//! The data access cost model: Table I parameters and Eq. 2.
//!
//! The cost of a request under a candidate `<h, s>` stripe pair is the
//! *maximum* over the involved servers of an affine service estimate —
//! the request is only done when its slowest sub-request is done:
//!
//! ```text
//! T_R(r, h, s) = max{ p_i·α_h  + s_i·(t + β_h),
//!                     p_j·α_sr + s_j·(t + β_sr) | i ∈ H, j ∈ S }      (Eq. 2)
//! ```
//!
//! with `p` the number of I/O startups a server pays during the request's
//! phase and `s` the bytes it must move. Writes use `(α_sw, β_sw)`.
//!
//! Like the paper, we extend the per-request view with **I/O concurrency**:
//! a request with phase concurrency `c` shares its servers with `c − 1`
//! similar simultaneous requests, whose expected per-server load (startup
//! probability × α + expected bytes × (t + β)) is added before taking the
//! max. The model deliberately ignores what the simulator knows —
//! network flow serialization, HDD head locality, SSD garbage collection —
//! so planner and ground truth stay separate.

use iotrace::Trace;
use netsim::LinkParams;
use pfs_sim::{LayoutSpec, Placement, ServerId};
use serde::{Deserialize, Serialize};
use simrt::SeedSeq;
use storage_model::{calibrate, Device, HddModel, HddParams, IoOp, SsdModel, SsdParams};

/// Table I: the parameters of the cost model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostParams {
    /// `M` — number of HServers.
    pub m: usize,
    /// `N` — number of SServers.
    pub n: usize,
    /// `t` — unit data network transfer time, seconds/byte.
    pub t: f64,
    /// `α_h` — average storage startup time on an HServer, seconds.
    pub alpha_h: f64,
    /// `β_h` — unit data transfer time on an HServer, seconds/byte.
    pub beta_h: f64,
    /// `α_sr` — average read startup time on an SServer, seconds.
    pub alpha_sr: f64,
    /// `β_sr` — unit read transfer time on an SServer, seconds/byte.
    pub beta_sr: f64,
    /// `α_sw` — average write startup time on an SServer, seconds.
    pub alpha_sw: f64,
    /// `β_sw` — unit write transfer time on an SServer, seconds/byte.
    pub beta_sw: f64,
}

impl CostParams {
    /// Calibrate the parameters by probing fresh device models — the
    /// in-simulation analogue of the paper measuring its servers. `m`/`n`
    /// give the cluster shape; `t` comes from the NIC parameters.
    pub fn calibrate(m: usize, n: usize, hdd: &HddParams, ssd: &SsdParams, link: &LinkParams) -> Self {
        let sizes = calibrate::default_probe_sizes();
        let seed = SeedSeq::new(0xCA11B);
        let extent = 64 << 30;
        let mut hdev = HddModel::new(hdd.clone());
        // Probe the HDD under a realistic locality mix (half the striped
        // sub-requests a data server sees continue the previous one) —
        // see `calibrate_with_locality`.
        let hfit = calibrate::calibrate_with_locality(
            &mut hdev,
            IoOp::Read,
            &sizes,
            24,
            extent,
            seed,
            0.5,
        );
        let mut sdev = SsdModel::new(ssd.clone());
        let srfit = calibrate::calibrate(&mut sdev, IoOp::Read, &sizes, 24, extent, seed);
        sdev.reset();
        let swfit = calibrate::calibrate(&mut sdev, IoOp::Write, &sizes, 24, extent, seed);
        CostParams {
            m,
            n,
            t: link.unit_transfer_time(),
            alpha_h: hfit.alpha,
            beta_h: hfit.beta,
            alpha_sr: srfit.alpha,
            beta_sr: srfit.beta,
            alpha_sw: swfit.alpha,
            beta_sw: swfit.beta,
        }
    }

    /// Calibrated parameters for the paper's default testbed shape
    /// (6 HServers, 2 SServers, Gigabit Ethernet).
    pub fn paper_default() -> Self {
        Self::calibrate(
            6,
            2,
            &HddParams::sata2_250gb(),
            &SsdParams::pcie_100gb(),
            &LinkParams::gigabit_ethernet(),
        )
    }

    /// Same parameters for a different server split.
    pub fn with_shape(&self, m: usize, n: usize) -> Self {
        CostParams { m, n, ..self.clone() }
    }

    /// Startup time on a server of the given class for `op`.
    pub fn alpha(&self, hserver: bool, op: IoOp) -> f64 {
        match (hserver, op) {
            (true, _) => self.alpha_h,
            (false, IoOp::Read) => self.alpha_sr,
            (false, IoOp::Write) => self.alpha_sw,
        }
    }

    /// Per-byte service time (network + storage) on a server class:
    /// Eq. 2's `t + β` serial transfer term.
    pub fn unit_time(&self, hserver: bool, op: IoOp) -> f64 {
        let beta = match (hserver, op) {
            (true, _) => self.beta_h,
            (false, IoOp::Read) => self.beta_sr,
            (false, IoOp::Write) => self.beta_sw,
        };
        self.t + beta
    }

    /// Build the layout a `<h, s>` pair denotes for this cluster shape.
    /// Returns `None` for the degenerate all-zero pair.
    pub fn layout_for(&self, h: u64, s: u64) -> Option<LayoutSpec> {
        if (h == 0 || self.m == 0) && (s == 0 || self.n == 0) {
            return None;
        }
        let hs: Vec<ServerId> = (0..self.m).map(ServerId).collect();
        let ss: Vec<ServerId> = (self.m..self.m + self.n).map(ServerId).collect();
        Some(LayoutSpec::hybrid(&hs, h, &ss, s))
    }

    /// Is server `i` (in the layout numbering) an HServer?
    pub fn is_hserver(&self, server: ServerId) -> bool {
        server.0 < self.m
    }

    /// Eq. 2 (and its write counterpart): access cost of one request under
    /// the `<h, s>` layout, in seconds. `None`-layout pairs cost infinity.
    pub fn request_cost(&self, req: &ReqView, h: u64, s: u64) -> f64 {
        let Some(layout) = self.layout_for(h, s) else {
            return f64::INFINITY;
        };
        self.request_cost_on(&layout, req)
    }

    /// Eq. 2 evaluated against an explicit layout.
    pub fn request_cost_on(&self, layout: &LayoutSpec, req: &ReqView) -> f64 {
        let round = layout.round_size() as f64;
        let mates = req.concurrency.saturating_sub(1) as f64;
        // Mate load depends only on a server's class stripe, and every
        // layout this crate builds assigns one stripe per class — so
        // compute the two mate constants once per request instead of
        // re-scanning the segment list per server (`stripe_of` is
        // O(segments)). A layout with mixed stripes inside a class (not
        // constructible via `fixed`/`hybrid`, but legal through
        // `from_assignments`) falls back to the per-server scan.
        let (mate_h, mate_s) = self.class_mate_loads(layout, req, mates);
        let mut worst: f64 = 0.0;
        // Own, concrete decomposition: p_i = contiguous runs (startups),
        // s_i = bytes, on each server this request actually touches.
        for (server, bytes, runs) in layout.per_server_load(req.offset, req.len) {
            let hserver = self.is_hserver(server);
            let alpha = self.alpha(hserver, req.op);
            let unit = self.unit_time(hserver, req.op);
            let own = f64::from(runs) * alpha + bytes as f64 * unit;
            let mate_load = match (hserver, mate_h, mate_s) {
                (true, Some(m), _) | (false, _, Some(m)) => m,
                _ => self.mate_load(round, layout.stripe_of(server) as f64, hserver, req, mates),
            };
            worst = worst.max(own + mate_load);
        }
        debug_assert!(round > 0.0);
        worst
    }

    /// Eq. 2 extended with the layout's redundancy: the base cost of
    /// [`Self::request_cost_on`] scaled by the placement's per-op factor
    /// (see [`placement_factors`]). `p_loss` is the probability a read
    /// finds its home unit permanently lost. Striped layouts (and
    /// `p_loss = 0` reads) are priced bit-identically to the base model.
    pub fn request_cost_redundant(&self, layout: &LayoutSpec, req: &ReqView, p_loss: f64) -> f64 {
        let factors = placement_factors(layout.placement(), p_loss);
        let factor = factors.for_op(req.op);
        let base = self.request_cost_on(layout, req);
        if factor == 1.0 {
            base
        } else {
            base * factor
        }
    }

    /// Precompute the per-class mate loads for one request: `Some(load)`
    /// for each class whose participating servers share one stripe size,
    /// `None` for a class with mixed stripes (caller falls back to the
    /// per-server computation — identical arithmetic either way).
    fn class_mate_loads(
        &self,
        layout: &LayoutSpec,
        req: &ReqView,
        mates: f64,
    ) -> (Option<f64>, Option<f64>) {
        let round = layout.round_size() as f64;
        let (mut h_stripe, mut s_stripe): (Option<u64>, Option<u64>) = (None, None);
        let (mut h_uniform, mut s_uniform) = (true, true);
        for (server, stripe) in layout.assignments() {
            let (slot, uniform) = if self.is_hserver(server) {
                (&mut h_stripe, &mut h_uniform)
            } else {
                (&mut s_stripe, &mut s_uniform)
            };
            match slot {
                None => *slot = Some(stripe),
                Some(x) if *x != stripe => *uniform = false,
                _ => {}
            }
        }
        let class = |stripe: Option<u64>, uniform: bool, hserver: bool| {
            match (stripe, uniform) {
                (Some(st), true) => Some(self.mate_load(round, st as f64, hserver, req, mates)),
                _ => None,
            }
        };
        (
            class(h_stripe, h_uniform, true),
            class(s_stripe, s_uniform, false),
        )
    }

    /// Expected queueing contribution of the `mates` concurrent similar
    /// requests on a server with the given `stripe`: each touches the
    /// server with probability `min(1, (l + stripe/2)/round)`, paying one
    /// startup when it does, and contributes `l·stripe/round` expected
    /// bytes.
    ///
    /// On the touch probability: a request of length `l` at a *uniformly
    /// random* position on the round circle overlaps a `stripe`-long
    /// segment with probability `(l + stripe)/round`; a request whose
    /// start is *aligned to the stripe grid* touches exactly
    /// `ceil(l/stripe)` segments, i.e. probability `≈ l/round`. Region
    /// files pack extents step-aligned, so real placements sit between
    /// the two — we use the midpoint. (The fully random form makes fine
    /// striping look free and drives RSSD toward needless splitting.)
    fn mate_load(&self, round: f64, stripe: f64, hserver: bool, req: &ReqView, mates: f64) -> f64 {
        if mates <= 0.0 {
            return 0.0;
        }
        let l = req.len as f64;
        let touch = ((l + stripe / 2.0) / round).min(1.0);
        let bytes = l * stripe / round;
        mates * (touch * self.alpha(hserver, req.op) + bytes * self.unit_time(hserver, req.op))
    }
}

/// Per-operation cost multipliers, the planner-side shadow of a layout's
/// redundancy. Eq. 2 prices one logical request against one physical
/// copy of its data; redundancy changes how many physical bytes a
/// logical byte stands for, and these factors carry that into the model:
///
/// * **writes** amplify deterministically — `k` full copies under
///   `k`-way replication, `(k + m)/k` under EC(`k`, `m`) (data plus
///   parity),
/// * **reads** amplify only in expectation — a replicated read still
///   touches one copy (failover swaps *which* copy, not how many), while
///   a degraded EC read reconstructs from `k` surviving units, so with
///   loss probability `p` the expected factor is `(1 − p) + p·k`.
///
/// Factors below 1 are never produced by [`placement_factors`]; the RSSD
/// search accepts any positive factors (its pruning floor is scaled by
/// the same factors, so admissibility is unconditional).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpFactors {
    /// Multiplier on each read request's Eq. 2 cost.
    pub read: f64,
    /// Multiplier on each write request's Eq. 2 cost.
    pub write: f64,
}

impl Default for OpFactors {
    fn default() -> Self {
        OpFactors { read: 1.0, write: 1.0 }
    }
}

impl OpFactors {
    /// The identity factors (striped layouts, the pre-redundancy model).
    pub fn neutral() -> Self {
        Self::default()
    }

    /// The factor for one operation.
    pub fn for_op(&self, op: IoOp) -> f64 {
        match op {
            IoOp::Read => self.read,
            IoOp::Write => self.write,
        }
    }

    /// Both factors are exactly 1 — scoring with them is bit-identical
    /// to the unfactored model.
    pub fn is_neutral(&self) -> bool {
        self.read == 1.0 && self.write == 1.0
    }
}

/// The [`OpFactors`] a placement implies, given the probability `p_loss`
/// that a read finds its home unit lost (0 = healthy cluster, 1 = every
/// read of the affected range is degraded). `p_loss` is clamped to
/// `[0, 1]`.
pub fn placement_factors(placement: Placement, p_loss: f64) -> OpFactors {
    let p = p_loss.clamp(0.0, 1.0);
    match placement {
        Placement::Striped => OpFactors::neutral(),
        // Replicated reads hit exactly one copy, healthy or not; writes
        // fan out to all k copies.
        Placement::Replicated(k) => OpFactors { read: 1.0, write: k as f64 },
        // EC writes carry the parity overhead; a degraded read gathers k
        // surviving units instead of 1.
        Placement::ErasureCoded(k, m) => {
            let kf = k.max(1) as f64;
            OpFactors {
                read: (1.0 - p) + p * kf,
                write: (kf + m as f64) / kf,
            }
        }
    }
}

/// The planner's view of one request: where it will live, how big it is,
/// its operation, and how many requests share its phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReqView {
    /// Offset the request will have in the (region) file being planned.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Read or write.
    pub op: IoOp,
    /// Phase concurrency (≥ 1 for a real request).
    pub concurrency: u32,
}

/// Extract [`ReqView`]s from a trace, using each record's own offsets
/// (the *inherent* order — what DEF/AAL/HARL plan against).
pub fn views_of(trace: &Trace) -> Vec<ReqView> {
    let conc = trace.concurrency();
    trace
        .records()
        .iter()
        .zip(conc)
        .map(|(r, c)| ReqView { offset: r.offset, len: r.len, op: r.op, concurrency: c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        // Hand-set values: round numbers make assertions exact.
        CostParams {
            m: 2,
            n: 2,
            t: 1e-8,
            alpha_h: 1e-2,
            beta_h: 1e-8,
            alpha_sr: 1e-4,
            beta_sr: 1e-9,
            alpha_sw: 2e-4,
            beta_sw: 2e-9,
        }
    }

    fn req(len: u64, op: IoOp, conc: u32) -> ReqView {
        ReqView { offset: 0, len, op, concurrency: conc }
    }

    #[test]
    fn single_server_request_costs_one_startup() {
        let p = params();
        // 4 KiB at offset 0 under <64K, 64K>: one run on HServer 0.
        let c = p.request_cost(&req(4096, IoOp::Read, 1), 64 << 10, 64 << 10);
        let expect = p.alpha_h + 4096.0 * (p.t + p.beta_h);
        assert!((c - expect).abs() < 1e-12, "c={c} expect={expect}");
    }

    #[test]
    fn cost_is_max_not_sum_over_servers() {
        let p = params();
        // A request spanning one full round of <h, s> = <10, 10>: every
        // server gets 10 bytes, 1 run. Max = slowest class (HServer).
        let c = p.request_cost(&req(40, IoOp::Read, 1), 10, 10);
        let h_cost = p.alpha_h + 10.0 * (p.t + p.beta_h);
        assert!((c - h_cost).abs() < 1e-12);
    }

    #[test]
    fn h_zero_layout_uses_only_sservers() {
        let p = params();
        let c = p.request_cost(&req(4096, IoOp::Read, 1), 0, 4096);
        // One run on the first SServer.
        let expect = p.alpha_sr + 4096.0 * (p.t + p.beta_sr);
        assert!((c - expect).abs() < 1e-12);
    }

    #[test]
    fn writes_cost_more_on_sservers() {
        let p = params();
        let r = p.request_cost(&req(4096, IoOp::Read, 1), 0, 64 << 10);
        let w = p.request_cost(&req(4096, IoOp::Write, 1), 0, 64 << 10);
        assert!(w > r);
    }

    #[test]
    fn concurrency_raises_cost() {
        let p = params();
        let lone = p.request_cost(&req(64 << 10, IoOp::Read, 1), 16 << 10, 16 << 10);
        let crowded = p.request_cost(&req(64 << 10, IoOp::Read, 16), 16 << 10, 16 << 10);
        assert!(crowded > lone);
    }

    #[test]
    fn degenerate_pair_is_infinite() {
        let p = params();
        assert!(p.request_cost(&req(4096, IoOp::Read, 1), 0, 0).is_infinite());
        assert!(p.layout_for(0, 0).is_none());
    }

    #[test]
    fn cost_monotone_in_request_size() {
        let p = params();
        let mut prev = 0.0;
        for len in [4096u64, 8192, 65536, 1 << 20] {
            let c = p.request_cost(&req(len, IoOp::Read, 4), 32 << 10, 96 << 10);
            assert!(c > prev, "len={len}");
            prev = c;
        }
    }

    #[test]
    fn splitting_small_requests_over_hdds_is_penalized() {
        let p = params();
        let small = req(16 << 10, IoOp::Read, 8);
        // <4K, 4K> scatters the 16 KiB over four servers (several HDD
        // startups among them); <32K, 96K> keeps it on one server.
        let scattered = p.request_cost(&small, 4 << 10, 4 << 10);
        let compact = p.request_cost(&small, 32 << 10, 96 << 10);
        assert!(compact < scattered, "compact={compact} scattered={scattered}");
    }

    #[test]
    fn mixed_class_stripes_fall_back_to_per_server_scan() {
        let p = params(); // m = 2, n = 2
        // Two HServers with *different* stripes — not constructible via
        // fixed/hybrid, so the per-class constants must defer to the
        // per-server stripe scan.
        let layout = LayoutSpec::from_assignments([
            (ServerId(0), 8u64 << 10),
            (ServerId(1), 16 << 10),
            (ServerId(2), 32 << 10),
            (ServerId(3), 32 << 10),
        ]);
        let req = ReqView { offset: 0, len: 96 << 10, op: IoOp::Read, concurrency: 4 };
        let got = p.request_cost_on(&layout, &req);
        // Oracle: the pre-kernel per-server formula, verbatim.
        let round = layout.round_size() as f64;
        let mates = 3.0;
        let mut expect = 0.0f64;
        for (server, bytes, runs) in layout.per_server_load(req.offset, req.len) {
            let hserver = p.is_hserver(server);
            let own = f64::from(runs) * p.alpha(hserver, req.op)
                + bytes as f64 * p.unit_time(hserver, req.op);
            let stripe = layout.stripe_of(server) as f64;
            let l = req.len as f64;
            let touch = ((l + stripe / 2.0) / round).min(1.0);
            let mb = l * stripe / round;
            let mate =
                mates * (touch * p.alpha(hserver, req.op) + mb * p.unit_time(hserver, req.op));
            expect = expect.max(own + mate);
        }
        assert_eq!(got.to_bits(), expect.to_bits());
    }

    #[test]
    fn calibrated_params_have_hdd_ssd_gap() {
        let p = CostParams::paper_default();
        assert!(p.alpha_h > 10.0 * p.alpha_sr, "α_h={} α_sr={}", p.alpha_h, p.alpha_sr);
        assert!(p.alpha_sw > p.alpha_sr);
        assert!(p.beta_sw > p.beta_sr);
        assert!(p.beta_h > p.beta_sr);
        assert!((p.t - 1.0 / 117.0e6).abs() < 1e-12);
        assert_eq!((p.m, p.n), (6, 2));
    }

    #[test]
    fn alpha_and_unit_time_dispatch_by_class_and_op() {
        let p = params();
        assert_eq!(p.alpha(true, IoOp::Read), p.alpha_h);
        assert_eq!(p.alpha(true, IoOp::Write), p.alpha_h);
        assert_eq!(p.alpha(false, IoOp::Read), p.alpha_sr);
        assert_eq!(p.alpha(false, IoOp::Write), p.alpha_sw);
        assert_eq!(p.unit_time(false, IoOp::Read), p.t + p.beta_sr);
        assert_eq!(p.unit_time(true, IoOp::Read), p.t + p.beta_h);
    }

    #[test]
    fn layout_for_hserver_only_and_shape_override() {
        let p = params().with_shape(3, 0);
        assert_eq!((p.m, p.n), (3, 0));
        let layout = p.layout_for(8192, 0).expect("H-only layout");
        assert_eq!(layout.servers().count(), 3);
        assert!(p.layout_for(0, 8192).is_none(), "no SServers to hold s");
    }

    #[test]
    fn placement_factors_cover_the_grid() {
        let f = placement_factors(Placement::Striped, 0.7);
        assert!(f.is_neutral());
        let f = placement_factors(Placement::Replicated(3), 0.5);
        assert_eq!((f.read, f.write), (1.0, 3.0));
        // EC(4+2): writes always pay 6/4; reads pay k-fold only on the
        // lost fraction.
        let healthy = placement_factors(Placement::ErasureCoded(4, 2), 0.0);
        assert_eq!((healthy.read, healthy.write), (1.0, 1.5));
        let lost = placement_factors(Placement::ErasureCoded(4, 2), 1.0);
        assert_eq!((lost.read, lost.write), (4.0, 1.5));
        let half = placement_factors(Placement::ErasureCoded(4, 2), 0.5);
        assert_eq!(half.read, 2.5);
        // p_loss clamps rather than extrapolating.
        let over = placement_factors(Placement::ErasureCoded(4, 2), 7.0);
        assert_eq!(over.read, 4.0);
    }

    #[test]
    fn redundant_cost_scales_writes_and_degraded_reads() {
        let p = params();
        let layout = p.layout_for(64 << 10, 64 << 10).unwrap();
        let w = req(32 << 10, IoOp::Write, 4);
        let r = req(32 << 10, IoOp::Read, 4);
        let base_w = p.request_cost_on(&layout, &w);
        let base_r = p.request_cost_on(&layout, &r);

        // Striped pricing is bit-identical to the base model.
        assert_eq!(p.request_cost_redundant(&layout, &w, 0.5).to_bits(), base_w.to_bits());

        let rep = layout.clone().with_placement(Placement::Replicated(3));
        assert_eq!(p.request_cost_redundant(&rep, &w, 0.0).to_bits(), (base_w * 3.0).to_bits());
        // Replicated reads never amplify, lost or not.
        assert_eq!(p.request_cost_redundant(&rep, &r, 1.0).to_bits(), base_r.to_bits());

        let ec = layout.clone().with_placement(Placement::ErasureCoded(2, 2));
        assert_eq!(p.request_cost_redundant(&ec, &w, 0.0).to_bits(), (base_w * 2.0).to_bits());
        assert_eq!(p.request_cost_redundant(&ec, &r, 0.0).to_bits(), base_r.to_bits());
        assert_eq!(p.request_cost_redundant(&ec, &r, 1.0).to_bits(), (base_r * 2.0).to_bits());
    }

    #[test]
    fn views_of_carries_concurrency() {
        use iotrace::gen::lanl::{generate, LanlConfig};
        let t = generate(&LanlConfig::paper(2, IoOp::Write));
        let views = views_of(&t);
        assert_eq!(views.len(), t.len());
        assert!(views.iter().all(|v| v.concurrency == 8));
        assert_eq!(views[0].len, 16);
    }
}
