//! Algorithm 1: iterative request grouping.
//!
//! A bounded k-means over (size, concurrency) feature points with the
//! Eq. 1 normalized distance. Faithful to the paper:
//!
//! * if there are no more points than groups, every point seeds its own
//!   group (the paper seeds centers from randomly selected requests),
//! * otherwise centers refine iteratively — assign each point to its
//!   nearest center, recompute centers — until the centers stop changing
//!   or the iteration cap (3, per the paper) is hit,
//! * `k` is capped to bound the number of regions and thus metadata
//!   overhead (§III-D).
//!
//! The refinement loop is chunked: nearest-center assignment and the
//! per-group feature sums are computed per fixed-size chunk of points
//! (in parallel with rayon on large inputs) and the chunk partials are
//! folded **in chunk index order**. That ordered reduction makes the
//! arithmetic — and therefore the grouping — independent of worker
//! count and bit-identical between the serial and parallel paths.

use crate::pattern::{FeatureSpace, ReqFeature};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use simrt::SeedSeq;

/// Fixed reduction chunk size. Partial sums are produced per `CHUNK`
/// points and folded in chunk order, so results never depend on how
/// rayon schedules the chunks.
const CHUNK: usize = 4096;

/// Below this many points the parallel path's spawn overhead outweighs
/// the work. Both paths are bit-identical, so the cutover is purely a
/// performance knob.
const PAR_MIN_POINTS: usize = 4 * CHUNK;

/// Grouping configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupingConfig {
    /// Upper bound on the number of groups (regions).
    pub k: usize,
    /// Refinement iteration cap (the paper uses 3).
    pub max_iters: usize,
    /// Seed for the initial center choice.
    pub seed: u64,
}

impl Default for GroupingConfig {
    fn default() -> Self {
        GroupingConfig { k: 8, max_iters: 3, seed: 0x6120 }
    }
}

/// Result of grouping: per-point group assignment plus group centers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grouping {
    /// `assignment[i]` is the group of point `i` (dense ids `0..groups`).
    pub assignment: Vec<usize>,
    /// Group centers, indexed by group id.
    pub centers: Vec<ReqFeature>,
    /// Refinement iterations actually performed.
    pub iterations: usize,
}

impl Grouping {
    /// Number of (non-empty) groups.
    pub fn groups(&self) -> usize {
        self.centers.len()
    }
}

/// Members-of-group index over a [`Grouping`]: one counting-sort pass
/// over the assignment replaces every O(n) `members(g)` rescan with a
/// borrowed slice lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupIndex {
    /// Per group `g`: `starts[g]..starts[g + 1]` slices `members`.
    starts: Vec<u32>,
    /// Point indices grouped by group id, ascending within each group.
    members: Vec<u32>,
}

impl GroupIndex {
    /// Index a grouping.
    pub fn new(grouping: &Grouping) -> Self {
        Self::from_assignment(&grouping.assignment, grouping.groups())
    }

    /// Index a raw assignment over dense group ids `0..groups`.
    pub fn from_assignment(assignment: &[usize], groups: usize) -> Self {
        assert!(assignment.len() < u32::MAX as usize, "group index is u32-sized");
        let mut starts = vec![0u32; groups + 1];
        for &a in assignment {
            starts[a + 1] += 1;
        }
        for g in 0..groups {
            starts[g + 1] += starts[g];
        }
        let mut cursor: Vec<u32> = starts[..groups].to_vec();
        let mut members = vec![0u32; assignment.len()];
        for (i, &a) in assignment.iter().enumerate() {
            let c = &mut cursor[a];
            members[*c as usize] = i as u32;
            *c += 1;
        }
        GroupIndex { starts, members }
    }

    /// Number of groups indexed.
    pub fn groups(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total points indexed.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no points were indexed.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Point indices of group `g`, ascending — borrowed, no allocation.
    pub fn members(&self, g: usize) -> &[u32] {
        &self.members[self.starts[g] as usize..self.starts[g + 1] as usize]
    }
}

/// Run Algorithm 1 on `points`. Dispatches to the rayon-parallel path on
/// large inputs; both paths are bit-identical (see the module docs and
/// the `grouping_serial_matches_parallel_*` property tests).
pub fn group_requests(points: &[ReqFeature], cfg: &GroupingConfig) -> Grouping {
    run(points, cfg, points.len() >= PAR_MIN_POINTS)
}

/// [`group_requests`] pinned to the serial path — the reference the
/// serial==parallel property tests compare against.
pub fn group_requests_serial(points: &[ReqFeature], cfg: &GroupingConfig) -> Grouping {
    run(points, cfg, false)
}

/// [`group_requests`] pinned to the rayon-parallel path.
pub fn group_requests_parallel(points: &[ReqFeature], cfg: &GroupingConfig) -> Grouping {
    run(points, cfg, true)
}

/// Algorithm 1 re-seeded from a previous window's centers — the
/// incremental path of the online re-planner.
///
/// Instead of the k-means++-style farthest-point seeding, refinement
/// starts from `seeds` (a previous [`Grouping::centers`]), extended by
/// farthest-point selection up to `cfg.k` when the seed set is smaller
/// (so a workload that grows a new feature cluster can still claim a
/// fresh group). On a quiet window the seeds are already converged for
/// the new points, the first update step changes nothing, and the loop
/// exits after a single assignment pass — that is what makes a quiet
/// window cost near zero. Empty `seeds` falls back to the cold path.
pub fn group_requests_seeded(
    points: &[ReqFeature],
    cfg: &GroupingConfig,
    seeds: &[ReqFeature],
) -> Grouping {
    run_from(points, cfg, seeds, points.len() >= PAR_MIN_POINTS)
}

fn run(points: &[ReqFeature], cfg: &GroupingConfig, parallel: bool) -> Grouping {
    run_from(points, cfg, &[], parallel)
}

fn run_from(
    points: &[ReqFeature],
    cfg: &GroupingConfig,
    seeds: &[ReqFeature],
    parallel: bool,
) -> Grouping {
    assert!(cfg.k > 0, "need at least one group");
    if points.is_empty() {
        return Grouping { assignment: Vec::new(), centers: Vec::new(), iterations: 0 };
    }
    let space = FeatureSpace::fit(points);
    if points.len() <= cfg.k {
        // Fewer points than groups: each point is its own group.
        return Grouping {
            assignment: (0..points.len()).collect(),
            centers: points.to_vec(),
            iterations: 0,
        };
    }

    let mut centers = if seeds.is_empty() {
        initial_centers(points, cfg.k, cfg.seed, &space, parallel)
    } else {
        extend_centers(points, seeds.to_vec(), cfg.k, &space, parallel)
    };
    let k = centers.len();
    let mut assignment = vec![0usize; points.len()];
    let n_chunks = points.len().div_ceil(CHUNK);
    // One partial-sum row per chunk, reused across iterations.
    let mut partials = vec![(0.0f64, 0.0f64, 0usize); n_chunks * k];
    let mut iterations = 0;
    for _ in 0..cfg.max_iters.max(1) {
        iterations += 1;
        // Assignment step: nearest center (Eq. 1 distance) per chunk,
        // with per-chunk per-group feature sums.
        if parallel {
            assignment
                .par_chunks_mut(CHUNK)
                .zip(points.par_chunks(CHUNK))
                .zip(partials.par_chunks_mut(k))
                .for_each(|((a_chunk, p_chunk), sums)| {
                    assign_chunk(p_chunk, &centers, &space, a_chunk, sums)
                });
        } else {
            for ((a_chunk, p_chunk), sums) in assignment
                .chunks_mut(CHUNK)
                .zip(points.chunks(CHUNK))
                .zip(partials.chunks_mut(k))
            {
                assign_chunk(p_chunk, &centers, &space, a_chunk, sums);
            }
        }
        // Update step: centroid of each group, from the chunk partials
        // folded in chunk index order (deterministic reduction).
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); k];
        for chunk in partials.chunks(k) {
            for (s, c) in sums.iter_mut().zip(chunk) {
                s.0 += c.0;
                s.1 += c.1;
                s.2 += c.2;
            }
        }
        let mut changed = false;
        for (c, &(sx, sy, n)) in centers.iter_mut().zip(&sums) {
            if n == 0 {
                continue; // empty group keeps its center
            }
            let next = ReqFeature { size: sx / n as f64, concurrency: sy / n as f64 };
            if space.distance(c, &next) > 1e-12 {
                *c = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    compact(assignment, centers, iterations)
}

/// Assign each point of one chunk to its nearest center and accumulate
/// the chunk's per-group `(Σsize, Σconcurrency, count)` partials.
fn assign_chunk(
    points: &[ReqFeature],
    centers: &[ReqFeature],
    space: &FeatureSpace,
    assignment: &mut [usize],
    sums: &mut [(f64, f64, usize)],
) {
    for s in sums.iter_mut() {
        *s = (0.0, 0.0, 0);
    }
    for (a, p) in assignment.iter_mut().zip(points) {
        let g = nearest(centers, p, space);
        *a = g;
        let s = &mut sums[g];
        s.0 += p.size;
        s.1 += p.concurrency;
        s.2 += 1;
    }
}

/// Seed centers: k-means++-style — first center random, each next center
/// the point farthest from its nearest chosen center (ties resolve to
/// the last maximum, matching `Iterator::max_by`). Deterministic given
/// the seed. Each point's minimum distance is maintained incrementally
/// against the newest center instead of rescanned over all centers —
/// `min` is exact, so the maintained value equals the rescan's.
fn initial_centers(
    points: &[ReqFeature],
    k: usize,
    seed: u64,
    space: &FeatureSpace,
    parallel: bool,
) -> Vec<ReqFeature> {
    use rand::Rng;
    let mut rng = SeedSeq::new(seed).derive("grouping").rng();
    extend_centers(points, vec![points[rng.gen_range(0..points.len())]], k, space, parallel)
}

/// Grow a nonempty center set to `k` by farthest-point selection (the
/// loop of [`initial_centers`], shared with the seeded path). Centers
/// beyond `k` are dropped; with one starting center this is exactly the
/// original seeding loop, bit for bit.
fn extend_centers(
    points: &[ReqFeature],
    mut centers: Vec<ReqFeature>,
    k: usize,
    space: &FeatureSpace,
    parallel: bool,
) -> Vec<ReqFeature> {
    debug_assert!(!centers.is_empty(), "extension needs a starting center");
    centers.truncate(k.max(1));
    let mut min_sq = vec![f64::INFINITY; points.len()];
    // Fold all but the newest center into the maintained minimum (a
    // no-op for the cold single-center start); the loop below folds the
    // newest one exactly as the original seeding did.
    for c in &centers[..centers.len() - 1] {
        for (p, m) in points.iter().zip(min_sq.iter_mut()) {
            let d = space.distance_sq(p, c);
            if d < *m {
                *m = d;
            }
        }
    }
    while centers.len() < k {
        let newest = *centers.last().expect("centers nonempty");
        let scan = |(ci, (p_chunk, m_chunk)): (usize, (&[ReqFeature], &mut [f64]))| {
            let mut best = f64::NEG_INFINITY;
            let mut best_i = 0usize;
            for (j, (p, m)) in p_chunk.iter().zip(m_chunk.iter_mut()).enumerate() {
                let d = space.distance_sq(p, &newest);
                if d < *m {
                    *m = d;
                }
                if *m >= best {
                    best = *m;
                    best_i = ci * CHUNK + j;
                }
            }
            (best, best_i)
        };
        let parts: Vec<(f64, usize)> = if parallel {
            points
                .par_chunks(CHUNK)
                .zip(min_sq.par_chunks_mut(CHUNK))
                .enumerate()
                .map(scan)
                .collect()
        } else {
            points
                .chunks(CHUNK)
                .zip(min_sq.chunks_mut(CHUNK))
                .enumerate()
                .map(scan)
                .collect()
        };
        let mut far_sq = f64::NEG_INFINITY;
        let mut far_i = 0usize;
        for (d, i) in parts {
            if d >= far_sq {
                far_sq = d;
                far_i = i;
            }
        }
        if far_sq.sqrt() <= 1e-12 {
            break; // all remaining points coincide with a center
        }
        centers.push(points[far_i]);
    }
    centers
}

/// Nearest center by Eq. 1 distance, first minimum on ties. Compares
/// squared distances — `sqrt` is monotone, so the argmin is unchanged
/// while the innermost loop drops its sqrt.
fn nearest(centers: &[ReqFeature], p: &ReqFeature, space: &FeatureSpace) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (g, c) in centers.iter().enumerate() {
        let d = space.distance_sq(p, c);
        if d < best_d {
            best_d = d;
            best = g;
        }
    }
    best
}

/// Drop empty groups and renumber assignments densely.
fn compact(assignment: Vec<usize>, centers: Vec<ReqFeature>, iterations: usize) -> Grouping {
    let mut used = vec![false; centers.len()];
    for &a in &assignment {
        used[a] = true;
    }
    let mut remap = vec![usize::MAX; centers.len()];
    let mut kept = Vec::new();
    for (old, c) in centers.into_iter().enumerate() {
        if used[old] {
            remap[old] = kept.len();
            kept.push(c);
        }
    }
    let assignment = assignment.into_iter().map(|a| remap[a]).collect();
    Grouping { assignment, centers: kept, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(size: f64, conc: f64) -> ReqFeature {
        ReqFeature { size, concurrency: conc }
    }

    fn lanl_points(loops: usize) -> Vec<ReqFeature> {
        // The LANL pattern: sizes 16 / 131056 / 131072 at concurrency 8.
        let mut v = Vec::new();
        for _ in 0..loops {
            v.push(f(16.0, 8.0));
            v.push(f(131_056.0, 8.0));
            v.push(f(131_072.0, 8.0));
        }
        v
    }

    #[test]
    fn lanl_pattern_separates_small_from_large() {
        let pts = lanl_points(20);
        let g = group_requests(&pts, &GroupingConfig { k: 2, ..Default::default() });
        assert_eq!(g.groups(), 2);
        // All 16-byte requests share a group; the two ~128K sizes share
        // the other (they are within 16 bytes of each other).
        let small_group = g.assignment[0];
        for (i, p) in pts.iter().enumerate() {
            if p.size < 1000.0 {
                assert_eq!(g.assignment[i], small_group);
            } else {
                assert_ne!(g.assignment[i], small_group);
            }
        }
    }

    #[test]
    fn uniform_requests_collapse_to_one_group() {
        let pts = vec![f(65536.0, 16.0); 100];
        let g = group_requests(&pts, &GroupingConfig { k: 8, ..Default::default() });
        assert_eq!(g.groups(), 1, "identical points need one region");
        assert!(g.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn few_points_get_singleton_groups() {
        let pts = vec![f(1.0, 1.0), f(2.0, 2.0)];
        let g = group_requests(&pts, &GroupingConfig { k: 8, ..Default::default() });
        assert_eq!(g.groups(), 2);
        assert_eq!(g.assignment, vec![0, 1]);
        assert_eq!(g.iterations, 0);
    }

    #[test]
    fn group_count_never_exceeds_k() {
        use rand::Rng;
        let mut rng = SeedSeq::new(7).rng();
        let pts: Vec<ReqFeature> = (0..500)
            .map(|_| f(rng.gen_range(1.0..1e7), rng.gen_range(1.0..64.0)))
            .collect();
        for k in [1, 2, 4, 8] {
            let g = group_requests(&pts, &GroupingConfig { k, ..Default::default() });
            assert!(g.groups() <= k, "k={k} got {}", g.groups());
            assert!(g.groups() >= 1);
            assert_eq!(g.assignment.len(), pts.len());
        }
    }

    #[test]
    fn iteration_cap_respected() {
        use rand::Rng;
        let mut rng = SeedSeq::new(9).rng();
        let pts: Vec<ReqFeature> = (0..200)
            .map(|_| f(rng.gen_range(1.0..1e6), rng.gen_range(1.0..32.0)))
            .collect();
        let g = group_requests(&pts, &GroupingConfig { k: 4, max_iters: 3, seed: 1 });
        assert!(g.iterations <= 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = lanl_points(10);
        let cfg = GroupingConfig::default();
        let a = group_requests(&pts, &cfg);
        let b = group_requests(&pts, &cfg);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn group_index_partitions_points() {
        let pts = lanl_points(5);
        let g = group_requests(&pts, &GroupingConfig { k: 3, ..Default::default() });
        let idx = GroupIndex::new(&g);
        assert_eq!(idx.groups(), g.groups());
        assert_eq!(idx.len(), pts.len());
        assert!(!idx.is_empty());
        let mut seen = vec![false; pts.len()];
        for grp in 0..idx.groups() {
            let mut prev = None;
            for &m in idx.members(grp) {
                assert!(!seen[m as usize], "point in two groups");
                seen[m as usize] = true;
                assert!(prev.is_none_or(|p| p < m), "members ascend");
                prev = Some(m);
            }
        }
        assert!(seen.iter().all(|&s| s), "every point in some group");
    }

    #[test]
    fn group_index_matches_assignment_rescan() {
        // The index must agree with a direct O(n) rescan of the
        // assignment (the behaviour of the removed `Grouping::members`).
        let pts = lanl_points(7);
        let g = group_requests(&pts, &GroupingConfig { k: 3, ..Default::default() });
        let idx = GroupIndex::new(&g);
        for grp in 0..g.groups() {
            let rescan: Vec<usize> = g
                .assignment
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a == grp)
                .map(|(i, _)| i)
                .collect();
            let new: Vec<usize> = idx.members(grp).iter().map(|&i| i as usize).collect();
            assert_eq!(rescan, new, "group {grp}");
        }
    }

    #[test]
    fn group_index_handles_empty_grouping() {
        let g = group_requests(&[], &GroupingConfig::default());
        let idx = GroupIndex::new(&g);
        assert_eq!(idx.groups(), 0);
        assert!(idx.is_empty());
    }

    #[test]
    fn empty_input_is_empty_grouping() {
        let g = group_requests(&[], &GroupingConfig::default());
        assert_eq!(g.groups(), 0);
        assert!(g.assignment.is_empty());
    }

    #[test]
    fn concurrency_dimension_separates_equal_sizes() {
        // Same size, two distinct concurrency levels (the Fig. 9 mix).
        let mut pts = vec![f(262_144.0, 8.0); 50];
        pts.extend(vec![f(262_144.0, 32.0); 50]);
        let g = group_requests(&pts, &GroupingConfig { k: 2, ..Default::default() });
        assert_eq!(g.groups(), 2);
        assert_ne!(g.assignment[0], g.assignment[99]);
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn assert_groupings_bit_identical(a: &Grouping, b: &Grouping, ctx: &str) {
        assert_eq!(a.assignment, b.assignment, "{ctx}: assignment");
        assert_eq!(a.iterations, b.iterations, "{ctx}: iterations");
        assert_eq!(a.centers.len(), b.centers.len(), "{ctx}: center count");
        for (i, (ca, cb)) in a.centers.iter().zip(&b.centers).enumerate() {
            assert_eq!(ca.size.to_bits(), cb.size.to_bits(), "{ctx}: center {i} size");
            assert_eq!(
                ca.concurrency.to_bits(),
                cb.concurrency.to_bits(),
                "{ctx}: center {i} concurrency"
            );
        }
    }

    /// The serial and rayon-parallel paths share the chunked arithmetic
    /// and the ordered reduction, so they must agree bit for bit — on
    /// fractional features too, and on inputs large enough that the
    /// parallel path actually fans out.
    #[test]
    fn grouping_serial_matches_parallel_randomized() {
        let mut s = 0xA11C_E000_5EED_0001u64;
        for trial in 0..12 {
            let n = if trial < 10 {
                1 + (xorshift(&mut s) % 3000) as usize
            } else {
                PAR_MIN_POINTS + (xorshift(&mut s) % 5000) as usize
            };
            let fractional = trial % 2 == 1;
            let pts: Vec<ReqFeature> = (0..n)
                .map(|_| {
                    let size = (xorshift(&mut s) % (1 << 21)) as f64;
                    let conc = (1 + xorshift(&mut s) % 64) as f64;
                    if fractional {
                        f(size + 0.25, conc + 0.5)
                    } else {
                        f(size, conc)
                    }
                })
                .collect();
            let k = 1 + (xorshift(&mut s) % 12) as usize;
            let cfg = GroupingConfig { k, max_iters: 3, seed: xorshift(&mut s) };
            let ser = group_requests_serial(&pts, &cfg);
            let par = group_requests_parallel(&pts, &cfg);
            assert_groupings_bit_identical(&ser, &par, &format!("trial {trial} (n={n}, k={k})"));
            // And the dispatching entry point picks one of the two.
            let auto = group_requests(&pts, &cfg);
            assert_groupings_bit_identical(&ser, &auto, &format!("trial {trial} dispatch"));
        }
    }

    /// The original implementation (sqrt distances, full rescans, point-
    /// order sums), kept as the oracle: on integer-valued features — the
    /// only kind `ReqFeature::of` produces — partial sums below 2^53 are
    /// exact, so the chunked path must reproduce it bit for bit.
    fn group_requests_oracle(points: &[ReqFeature], cfg: &GroupingConfig) -> Grouping {
        use rand::Rng;
        assert!(cfg.k > 0, "need at least one group");
        if points.is_empty() {
            return Grouping { assignment: Vec::new(), centers: Vec::new(), iterations: 0 };
        }
        let space = FeatureSpace::fit(points);
        if points.len() <= cfg.k {
            return Grouping {
                assignment: (0..points.len()).collect(),
                centers: points.to_vec(),
                iterations: 0,
            };
        }
        let oracle_nearest = |centers: &[ReqFeature], p: &ReqFeature| {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (g, c) in centers.iter().enumerate() {
                let d = space.distance(p, c);
                if d < best_d {
                    best_d = d;
                    best = g;
                }
            }
            best
        };
        let mut rng = SeedSeq::new(cfg.seed).derive("grouping").rng();
        let mut centers = Vec::with_capacity(cfg.k);
        centers.push(points[rng.gen_range(0..points.len())]);
        while centers.len() < cfg.k {
            let far = points
                .iter()
                .map(|p| {
                    let d = centers
                        .iter()
                        .map(|c| space.distance(p, c))
                        .fold(f64::INFINITY, f64::min);
                    (p, d)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                .map(|(p, d)| (*p, d))
                .expect("points nonempty");
            if far.1 <= 1e-12 {
                break;
            }
            centers.push(far.0);
        }
        let mut assignment = vec![0usize; points.len()];
        let mut iterations = 0;
        for _ in 0..cfg.max_iters.max(1) {
            iterations += 1;
            for (i, p) in points.iter().enumerate() {
                assignment[i] = oracle_nearest(&centers, p);
            }
            let mut sums = vec![(0.0f64, 0.0f64, 0usize); centers.len()];
            for (i, p) in points.iter().enumerate() {
                let s = &mut sums[assignment[i]];
                s.0 += p.size;
                s.1 += p.concurrency;
                s.2 += 1;
            }
            let mut changed = false;
            for (c, &(sx, sy, n)) in centers.iter_mut().zip(&sums) {
                if n == 0 {
                    continue;
                }
                let next = ReqFeature { size: sx / n as f64, concurrency: sy / n as f64 };
                if space.distance(c, &next) > 1e-12 {
                    *c = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        compact(assignment, centers, iterations)
    }

    #[test]
    fn grouping_matches_original_oracle_on_integer_features() {
        let mut s = 0xB0B5_1ED5_0000_0002u64;
        for trial in 0..20 {
            let n = 1 + (xorshift(&mut s) % 2000) as usize;
            let pts: Vec<ReqFeature> = (0..n)
                .map(|_| {
                    f(
                        (xorshift(&mut s) % (1 << 22)) as f64,
                        (1 + xorshift(&mut s) % 128) as f64,
                    )
                })
                .collect();
            let k = 1 + (xorshift(&mut s) % 10) as usize;
            let cfg = GroupingConfig { k, max_iters: 3, seed: xorshift(&mut s) };
            let want = group_requests_oracle(&pts, &cfg);
            let got = group_requests(&pts, &cfg);
            assert_groupings_bit_identical(&want, &got, &format!("trial {trial} (n={n}, k={k})"));
        }
    }

    #[test]
    fn seeded_with_empty_seeds_is_the_cold_path() {
        let pts = lanl_points(30);
        let cfg = GroupingConfig::default();
        let cold = group_requests(&pts, &cfg);
        let seeded = group_requests_seeded(&pts, &cfg, &[]);
        assert_groupings_bit_identical(&cold, &seeded, "empty seeds");
    }

    #[test]
    fn reseeding_from_converged_centers_converges_in_one_pass() {
        let pts = lanl_points(40);
        let cfg = GroupingConfig { k: 3, ..Default::default() };
        let cold = group_requests(&pts, &cfg);
        let warm = group_requests_seeded(&pts, &cfg, &cold.centers);
        assert_eq!(warm.iterations, 1, "converged seeds stop after one assignment pass");
        assert_eq!(warm.assignment, cold.assignment);
        assert_eq!(warm.groups(), cold.groups());
    }

    #[test]
    fn seeded_centers_extend_to_claim_new_clusters() {
        // Seed with one center near the small-size cluster; the data has
        // a second far cluster, so the extension must claim it.
        let mut pts = vec![f(16.0, 8.0); 40];
        pts.extend(vec![f(1_048_576.0, 8.0); 40]);
        let cfg = GroupingConfig { k: 2, ..Default::default() };
        let warm = group_requests_seeded(&pts, &cfg, &[f(20.0, 8.0)]);
        assert_eq!(warm.groups(), 2, "farthest-point extension finds the far cluster");
        assert_ne!(warm.assignment[0], warm.assignment[79]);
    }

    #[test]
    fn seeded_group_count_never_exceeds_k() {
        use rand::Rng;
        let mut rng = SeedSeq::new(77).rng();
        let pts: Vec<ReqFeature> = (0..400)
            .map(|_| f(rng.gen_range(1.0..1e7), rng.gen_range(1.0..64.0)))
            .collect();
        // More seeds than k: the seed set must be truncated, not grown.
        let seeds: Vec<ReqFeature> =
            (0..8).map(|i| f(1e6 * (i + 1) as f64, 4.0 * (i + 1) as f64)).collect();
        for k in [1, 2, 4] {
            let g = group_requests_seeded(&pts, &GroupingConfig { k, ..Default::default() }, &seeds);
            assert!(g.groups() <= k, "k={k} got {}", g.groups());
            assert_eq!(g.assignment.len(), pts.len());
        }
    }

    #[test]
    fn seeded_grouping_tracks_a_drifted_workload() {
        // Window 1: two clusters. Window 2: the clusters moved. The
        // seeded grouping must still separate them cleanly.
        let mut w1 = vec![f(4096.0, 4.0); 50];
        w1.extend(vec![f(262_144.0, 16.0); 50]);
        let cfg = GroupingConfig { k: 2, ..Default::default() };
        let g1 = group_requests(&w1, &cfg);
        let mut w2 = vec![f(8192.0, 6.0); 50];
        w2.extend(vec![f(524_288.0, 24.0); 50]);
        let g2 = group_requests_seeded(&w2, &cfg, &g1.centers);
        assert_eq!(g2.groups(), 2);
        assert_ne!(g2.assignment[0], g2.assignment[99]);
        assert!(g2.assignment[..50].iter().all(|&a| a == g2.assignment[0]));
        assert!(g2.assignment[50..].iter().all(|&a| a == g2.assignment[99]));
    }

    #[test]
    fn grouping_matches_original_oracle_on_paper_workload_shapes() {
        for loops in [1, 5, 20, 64] {
            let pts = lanl_points(loops);
            for k in [1, 2, 4, 8] {
                let cfg = GroupingConfig { k, ..Default::default() };
                let want = group_requests_oracle(&pts, &cfg);
                let got = group_requests(&pts, &cfg);
                assert_groupings_bit_identical(&want, &got, &format!("loops {loops} k {k}"));
            }
        }
    }
}
