//! Algorithm 1: iterative request grouping.
//!
//! A bounded k-means over (size, concurrency) feature points with the
//! Eq. 1 normalized distance. Faithful to the paper:
//!
//! * if there are no more points than groups, every point seeds its own
//!   group (the paper seeds centers from randomly selected requests),
//! * otherwise centers refine iteratively — assign each point to its
//!   nearest center, recompute centers — until the centers stop changing
//!   or the iteration cap (3, per the paper) is hit,
//! * `k` is capped to bound the number of regions and thus metadata
//!   overhead (§III-D).

use crate::pattern::{FeatureSpace, ReqFeature};
use serde::{Deserialize, Serialize};
use simrt::SeedSeq;

/// Grouping configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupingConfig {
    /// Upper bound on the number of groups (regions).
    pub k: usize,
    /// Refinement iteration cap (the paper uses 3).
    pub max_iters: usize,
    /// Seed for the initial center choice.
    pub seed: u64,
}

impl Default for GroupingConfig {
    fn default() -> Self {
        GroupingConfig { k: 8, max_iters: 3, seed: 0x6120 }
    }
}

/// Result of grouping: per-point group assignment plus group centers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grouping {
    /// `assignment[i]` is the group of point `i` (dense ids `0..groups`).
    pub assignment: Vec<usize>,
    /// Group centers, indexed by group id.
    pub centers: Vec<ReqFeature>,
    /// Refinement iterations actually performed.
    pub iterations: usize,
}

impl Grouping {
    /// Number of (non-empty) groups.
    pub fn groups(&self) -> usize {
        self.centers.len()
    }

    /// Indices of the points in group `g`, in point order.
    pub fn members(&self, g: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == g)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Run Algorithm 1 on `points`.
pub fn group_requests(points: &[ReqFeature], cfg: &GroupingConfig) -> Grouping {
    assert!(cfg.k > 0, "need at least one group");
    if points.is_empty() {
        return Grouping { assignment: Vec::new(), centers: Vec::new(), iterations: 0 };
    }
    let space = FeatureSpace::fit(points);
    if points.len() <= cfg.k {
        // Fewer points than groups: each point is its own group.
        return Grouping {
            assignment: (0..points.len()).collect(),
            centers: points.to_vec(),
            iterations: 0,
        };
    }

    let mut centers = initial_centers(points, cfg.k, cfg.seed, &space);
    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;
    for _ in 0..cfg.max_iters.max(1) {
        iterations += 1;
        // Assignment step: nearest center (Eq. 1 distance).
        for (i, p) in points.iter().enumerate() {
            assignment[i] = nearest(&centers, p, &space);
        }
        // Update step: centroid of each group.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); centers.len()];
        for (i, p) in points.iter().enumerate() {
            let s = &mut sums[assignment[i]];
            s.0 += p.size;
            s.1 += p.concurrency;
            s.2 += 1;
        }
        let mut changed = false;
        for (c, &(sx, sy, n)) in centers.iter_mut().zip(&sums) {
            if n == 0 {
                continue; // empty group keeps its center
            }
            let next = ReqFeature { size: sx / n as f64, concurrency: sy / n as f64 };
            if space.distance(c, &next) > 1e-12 {
                *c = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    compact(points, assignment, centers, iterations, &space)
}

/// Seed centers: k-means++-style — first center random, each next center
/// the point farthest from its nearest chosen center. Deterministic given
/// the seed.
fn initial_centers(points: &[ReqFeature], k: usize, seed: u64, space: &FeatureSpace) -> Vec<ReqFeature> {
    use rand::Rng;
    let mut rng = SeedSeq::new(seed).derive("grouping").rng();
    let mut centers = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..points.len())]);
    while centers.len() < k {
        let far = points
            .iter()
            .map(|p| {
                let d = centers
                    .iter()
                    .map(|c| space.distance(p, c))
                    .fold(f64::INFINITY, f64::min);
                (p, d)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .map(|(p, d)| (*p, d))
            .expect("points nonempty");
        if far.1 <= 1e-12 {
            break; // all remaining points coincide with a center
        }
        centers.push(far.0);
    }
    centers
}

fn nearest(centers: &[ReqFeature], p: &ReqFeature, space: &FeatureSpace) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (g, c) in centers.iter().enumerate() {
        let d = space.distance(p, c);
        if d < best_d {
            best_d = d;
            best = g;
        }
    }
    best
}

/// Drop empty groups and renumber assignments densely; recompute final
/// assignment against surviving centers.
fn compact(
    points: &[ReqFeature],
    assignment: Vec<usize>,
    centers: Vec<ReqFeature>,
    iterations: usize,
    _space: &FeatureSpace,
) -> Grouping {
    let mut used = vec![false; centers.len()];
    for &a in &assignment {
        used[a] = true;
    }
    let mut remap = vec![usize::MAX; centers.len()];
    let mut kept = Vec::new();
    for (old, c) in centers.into_iter().enumerate() {
        if used[old] {
            remap[old] = kept.len();
            kept.push(c);
        }
    }
    let assignment = assignment.into_iter().map(|a| remap[a]).collect();
    let _ = points;
    Grouping { assignment, centers: kept, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(size: f64, conc: f64) -> ReqFeature {
        ReqFeature { size, concurrency: conc }
    }

    fn lanl_points(loops: usize) -> Vec<ReqFeature> {
        // The LANL pattern: sizes 16 / 131056 / 131072 at concurrency 8.
        let mut v = Vec::new();
        for _ in 0..loops {
            v.push(f(16.0, 8.0));
            v.push(f(131_056.0, 8.0));
            v.push(f(131_072.0, 8.0));
        }
        v
    }

    #[test]
    fn lanl_pattern_separates_small_from_large() {
        let pts = lanl_points(20);
        let g = group_requests(&pts, &GroupingConfig { k: 2, ..Default::default() });
        assert_eq!(g.groups(), 2);
        // All 16-byte requests share a group; the two ~128K sizes share
        // the other (they are within 16 bytes of each other).
        let small_group = g.assignment[0];
        for (i, p) in pts.iter().enumerate() {
            if p.size < 1000.0 {
                assert_eq!(g.assignment[i], small_group);
            } else {
                assert_ne!(g.assignment[i], small_group);
            }
        }
    }

    #[test]
    fn uniform_requests_collapse_to_one_group() {
        let pts = vec![f(65536.0, 16.0); 100];
        let g = group_requests(&pts, &GroupingConfig { k: 8, ..Default::default() });
        assert_eq!(g.groups(), 1, "identical points need one region");
        assert!(g.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn few_points_get_singleton_groups() {
        let pts = vec![f(1.0, 1.0), f(2.0, 2.0)];
        let g = group_requests(&pts, &GroupingConfig { k: 8, ..Default::default() });
        assert_eq!(g.groups(), 2);
        assert_eq!(g.assignment, vec![0, 1]);
        assert_eq!(g.iterations, 0);
    }

    #[test]
    fn group_count_never_exceeds_k() {
        use rand::Rng;
        let mut rng = SeedSeq::new(7).rng();
        let pts: Vec<ReqFeature> = (0..500)
            .map(|_| f(rng.gen_range(1.0..1e7), rng.gen_range(1.0..64.0)))
            .collect();
        for k in [1, 2, 4, 8] {
            let g = group_requests(&pts, &GroupingConfig { k, ..Default::default() });
            assert!(g.groups() <= k, "k={k} got {}", g.groups());
            assert!(g.groups() >= 1);
            assert_eq!(g.assignment.len(), pts.len());
        }
    }

    #[test]
    fn iteration_cap_respected() {
        use rand::Rng;
        let mut rng = SeedSeq::new(9).rng();
        let pts: Vec<ReqFeature> = (0..200)
            .map(|_| f(rng.gen_range(1.0..1e6), rng.gen_range(1.0..32.0)))
            .collect();
        let g = group_requests(&pts, &GroupingConfig { k: 4, max_iters: 3, seed: 1 });
        assert!(g.iterations <= 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = lanl_points(10);
        let cfg = GroupingConfig::default();
        let a = group_requests(&pts, &cfg);
        let b = group_requests(&pts, &cfg);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn members_partitions_points() {
        let pts = lanl_points(5);
        let g = group_requests(&pts, &GroupingConfig { k: 3, ..Default::default() });
        let mut seen = vec![false; pts.len()];
        for grp in 0..g.groups() {
            for m in g.members(grp) {
                assert!(!seen[m], "point in two groups");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every point in some group");
    }

    #[test]
    fn empty_input_is_empty_grouping() {
        let g = group_requests(&[], &GroupingConfig::default());
        assert_eq!(g.groups(), 0);
        assert!(g.assignment.is_empty());
    }

    #[test]
    fn concurrency_dimension_separates_equal_sizes() {
        // Same size, two distinct concurrency levels (the Fig. 9 mix).
        let mut pts = vec![f(262_144.0, 8.0); 50];
        pts.extend(vec![f(262_144.0, 32.0); 50]);
        let g = group_requests(&pts, &GroupingConfig { k: 2, ..Default::default() });
        assert_eq!(g.groups(), 2);
        assert_ne!(g.assignment[0], g.assignment[99]);
    }
}
