//! Algorithm 2: Region Stripe Size Determination (RSSD).
//!
//! Exhaustive search over candidate `<h, s>` stripe pairs in `step`
//! increments, scoring each pair by the summed Eq. 2 cost of every request
//! in the region, and keeping the cheapest. Faithful to the paper:
//!
//! * `h` starts at **0** — dispatching data only on SServers is a legal
//!   extreme when it wins,
//! * `s` starts at `h + step`, keeping the SServer stripe strictly larger
//!   (SServers are faster; a smaller stripe there could only add
//!   imbalance),
//! * bounds adapt to the region's largest request `r_max`: small regions
//!   search up to `r_max` on both classes (more candidates, bounded
//!   space); large regions search up to `r_max/M` and `r_max/N`, which
//!   keeps every server involved for big requests and prunes pointless
//!   candidates,
//! * the default `step` is 4 KiB and is user-configurable.
//!
//! The outer loop is data-parallel (rayon): candidate pairs are scored
//! independently, with a deterministic reduction (min by cost, ties to
//! the smaller pair) so parallelism never changes the result.
//!
//! ## The fast cost kernel
//!
//! Scoring a candidate is the hot path: every request in the region is
//! decomposed onto the candidate layout. The kernel keeps that scan
//! allocation-free and output-identical to the naive implementation:
//!
//! * requests decompose through the closed-form
//!   [`pfs_sim::LayoutSpec::per_server_load_into`] (O(servers) per
//!   request instead of O(len/stripe) stripe-unit walking),
//! * each rayon worker threads one [`CostScratch`] through the whole
//!   candidate scan — candidate layouts are rebuilt in place and all
//!   accumulators are reused, so steady-state scoring performs no heap
//!   allocation,
//! * an admissible per-candidate lower bound (a network/transfer floor
//!   that is independent of how bytes spread over servers, precomputed
//!   once per region) plus a shared best-so-far (atomic `f64` bits) lets
//!   workers skip candidates outright or abandon the phase loop as soon
//!   as a candidate's running sum exceeds the incumbent.
//!
//! Pruning is exact: a candidate is only skipped when its cost provably
//! *exceeds* the incumbent (strict), so it can neither win nor tie — the
//! returned `(pair, cost)` is bit-identical to the unpruned search.

use crate::cost::{CostParams, OpFactors, ReqView};
use pfs_sim::{LayoutSpec, LoadScratch, ServerId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use storage_model::IoOp;

/// A `<h, s>` stripe pair, bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StripePair {
    /// Stripe size on each HServer (0 = HServers excluded).
    pub h: u64,
    /// Stripe size on each SServer.
    pub s: u64,
}

/// RSSD tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RssdConfig {
    /// Search step, bytes (paper default 4 KiB).
    pub step: u64,
    /// Threshold multiplier for the adaptive bounds: regions with
    /// `r_max < (M + N) * small_region_unit` use `r_max` as both bounds.
    /// The paper uses 64 KiB.
    pub small_region_unit: u64,
    /// Use the adaptive bounds of the paper (true) or the plain
    /// `r_max` bound of HARL (false) — the `ablation_bounds` knob.
    pub adaptive_bounds: bool,
    /// Replace the region's `r_max` with a fixed value before computing
    /// bounds. HARL bounds its search by the *average* request size; MHA
    /// leaves this `None` and uses the true maximum.
    pub bound_override: Option<u64>,
    /// Branch-and-bound pruning (on by default). Pruning is admissible —
    /// it never changes the returned `(pair, cost)` — so this knob exists
    /// only for A/B verification and benchmarking.
    #[serde(default = "default_true")]
    pub pruning: bool,
    /// Multiplier on every read request's cost during the search
    /// (redundancy-aware planning: the expected degraded-read
    /// amplification of an EC layout, see
    /// [`crate::cost::placement_factors`]). The pruning floor is scaled
    /// by the same factor, so any positive value keeps the search exact;
    /// 1.0 is bit-identical to the unfactored model.
    #[serde(default = "default_factor")]
    pub read_factor: f64,
    /// Multiplier on every write request's cost during the search (the
    /// k-fold replica fan-out or `(k + m)/k` parity overhead of a
    /// redundant layout).
    #[serde(default = "default_factor")]
    pub write_factor: f64,
}

// Referenced only through the `serde(default)` attribute string; the
// offline derive stub drops that reference, so the lint must be silenced.
#[allow(dead_code)]
fn default_true() -> bool {
    true
}

#[allow(dead_code)]
fn default_factor() -> f64 {
    1.0
}

impl Default for RssdConfig {
    fn default() -> Self {
        RssdConfig {
            step: 4 << 10,
            small_region_unit: 64 << 10,
            adaptive_bounds: true,
            bound_override: None,
            pruning: true,
            read_factor: 1.0,
            write_factor: 1.0,
        }
    }
}

impl RssdConfig {
    /// The per-op factors this config scores with.
    pub fn factors(&self) -> OpFactors {
        OpFactors { read: self.read_factor, write: self.write_factor }
    }

    /// This config with a placement's factors installed (see
    /// [`crate::cost::placement_factors`]).
    pub fn with_factors(self, factors: OpFactors) -> Self {
        RssdConfig { read_factor: factors.read, write_factor: factors.write, ..self }
    }
}

/// Result of a stripe search.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RssdResult {
    /// The winning pair.
    pub pair: StripePair,
    /// Its total region cost (sum of Eq. 2 over requests), seconds.
    pub cost: f64,
    /// Number of candidate pairs considered (the full candidate grid —
    /// independent of pruning, so step/bound comparisons stay meaningful).
    pub evaluated: u64,
    /// Of `evaluated`, how many were skipped by the lower bound or
    /// abandoned mid-scan by the incumbent cutoff. `0` when
    /// [`RssdConfig::pruning`] is off. The count depends on parallel
    /// scheduling (which worker finds a good incumbent first); the
    /// returned `(pair, cost)` never does.
    #[serde(default)]
    pub pruned: u64,
}

/// Compute the search bounds `(B_h, B_s)` for a region with largest
/// request `r_max`.
pub fn bounds(r_max: u64, params: &CostParams, cfg: &RssdConfig) -> (u64, u64) {
    let servers = (params.m + params.n) as u64;
    if !cfg.adaptive_bounds || r_max < servers * cfg.small_region_unit {
        (r_max, r_max)
    } else {
        (
            r_max / (params.m.max(1) as u64),
            r_max / (params.n.max(1) as u64),
        )
    }
}

/// Number of `s` candidates scored for the lane at `h`: the step-grid
/// points in `(h, B_s]`, but never fewer than one — the minimal legal
/// pair `<h, h + step>` is always scored even when `B_s < h + step`, so
/// no lane is empty (SServer stripes must stay strictly larger than `h`).
fn lane_candidates(h: u64, b_s: u64, step: u64) -> u64 {
    (b_s.saturating_sub(h) / step).max(1)
}

/// Run RSSD over the region's requests. Returns `None` for an empty
/// region (nothing to optimize).
pub fn rssd(requests: &[ReqView], params: &CostParams, cfg: &RssdConfig) -> Option<RssdResult> {
    if requests.is_empty() {
        return None;
    }
    let r_max = cfg
        .bound_override
        .unwrap_or_else(|| requests.iter().map(|r| r.len).max().expect("nonempty"));
    let step = cfg.step.max(1);
    let (b_h, b_s) = bounds(r_max.max(step), params, cfg);
    // Candidate h values: 0, step, 2·step, … ≤ B_h (h = 0 is the
    // SServers-only extreme). When the cluster has no SServers the pair
    // degenerates to <h, 0>, searched the same way with roles flipped.
    let n_h = b_h / step + 1;

    let factors = cfg.factors();

    // Region-level floors for branch-and-bound, computed once; the shared
    // incumbent holds the best exact cost seen so far as f64 bits (costs
    // are non-negative, so bit order equals float order and fetch_min on
    // the raw bits is a float min).
    let lb = RegionLowerBounds::compute(requests, params, factors);
    let incumbent = AtomicU64::new(f64::INFINITY.to_bits());

    let best = (0..n_h)
        .into_par_iter()
        .map_init(CostScratch::new, |scratch, lane| {
            let h = lane * step;
            let n_s = lane_candidates(h, b_s, step);
            let mut local_best: Option<(f64, StripePair)> = None;
            let mut pruned = 0u64;
            for k in 1..=n_s {
                let pair = StripePair { h, s: h + k * step };
                let inc = f64::from_bits(incumbent.load(Ordering::Relaxed));
                if cfg.pruning && lb.for_pair(params, pair) > inc {
                    // The floor already exceeds the best exact cost seen:
                    // this candidate can neither win nor tie. Skip it.
                    pruned += 1;
                    continue;
                }
                let cutoff = if cfg.pruning { inc } else { f64::INFINITY };
                match region_cost_factored(requests, params, pair, factors, cutoff, scratch) {
                    None => pruned += 1, // running sum exceeded the incumbent
                    Some(cost) => {
                        if cost.is_finite() {
                            incumbent.fetch_min(cost.to_bits(), Ordering::Relaxed);
                            let better = match local_best {
                                None => true,
                                Some((c, _)) => cost < c,
                            };
                            if better {
                                local_best = Some((cost, pair));
                            }
                        }
                    }
                }
            }
            (local_best, n_s, pruned)
        })
        .reduce(
            || (None, 0, 0),
            |a, b| {
                let pick = match (a.0, b.0) {
                    (None, x) => x,
                    (x, None) => x,
                    (Some((ca, pa)), Some((cb, pb))) => {
                        // Deterministic: strictly-lower cost wins; ties go
                        // to the lexicographically smaller pair.
                        if cb < ca || (cb == ca && (pb.h, pb.s) < (pa.h, pa.s)) {
                            Some((cb, pb))
                        } else {
                            Some((ca, pa))
                        }
                    }
                };
                (pick, a.1 + b.1, a.2 + b.2)
            },
        );

    let (opt, evaluated, pruned) = best;
    let (cost, pair) = opt?;
    Some(RssdResult { pair, cost, evaluated, pruned })
}

/// Reusable per-worker buffers for the candidate scan: the in-place
/// candidate layout, the closed-form decomposition scratch, and the
/// per-server phase accumulators. One instance per rayon worker makes the
/// entire scan allocation-free at steady state.
#[derive(Debug, Clone)]
pub struct CostScratch {
    /// Candidate layout, rebuilt in place for each `<h, s>` pair.
    layout: LayoutSpec,
    /// Closed-form per-request decomposition buffers.
    loads: LoadScratch,
    /// Per-server accumulated phase time, indexed by `ServerId.0`.
    acc: Vec<f64>,
    /// Servers with nonzero accumulation in the current phase.
    touched: Vec<usize>,
}

impl CostScratch {
    /// Fresh scratch; all buffers grow on first use and are then reused.
    pub fn new() -> Self {
        CostScratch {
            // Placeholder — overwritten by `rebuild` before first use.
            layout: LayoutSpec::fixed(&[ServerId(0)], 1),
            loads: LoadScratch::new(),
            acc: Vec::new(),
            touched: Vec::new(),
        }
    }
}

impl Default for CostScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Total region cost: the sum of per-phase Eq. 2 costs.
///
/// This is the paper's cost model "extended by considering I/O
/// concurrency" evaluated *exactly*: requests are walked in trace order
/// and grouped into phases of `concurrency` consecutive requests (the
/// requests issued simultaneously); every request in a phase is
/// decomposed onto the candidate layout at its **actual** offset, and the
/// phase costs `max_i(p_i·α_i + s_i·(t + β_i))` over the accumulated
/// per-server startups `p_i` and bytes `s_i` — the phase finishes with
/// its slowest server. Using actual offsets (rather than a statistical
/// mates term) lets the search see alignment resonance: a stripe pair
/// that systematically lands every request's large piece on the same
/// server scores as badly as it will perform.
///
/// Concurrency-1 views (HARL's model predates the extension) degenerate
/// to the plain per-request Eq. 2 sum.
pub fn region_cost(requests: &[ReqView], params: &CostParams, pair: StripePair) -> f64 {
    let mut scratch = CostScratch::new();
    region_cost_bounded(requests, params, pair, f64::INFINITY, &mut scratch)
        .expect("an infinite cutoff is never exceeded")
}

/// [`region_cost`] with reusable buffers and an early-exit cutoff: returns
/// `None` as soon as the phase-by-phase running sum strictly exceeds
/// `cutoff` (the candidate provably cannot win or tie the incumbent),
/// `Some(total)` otherwise. With `cutoff = f64::INFINITY` this is exactly
/// `region_cost` — same arithmetic in the same order, bit-identical
/// totals. Degenerate pairs (no participating server) cost
/// `Some(f64::INFINITY)`.
pub fn region_cost_bounded(
    requests: &[ReqView],
    params: &CostParams,
    pair: StripePair,
    cutoff: f64,
    scratch: &mut CostScratch,
) -> Option<f64> {
    region_cost_factored(requests, params, pair, OpFactors::neutral(), cutoff, scratch)
}

/// [`region_cost_bounded`] with per-op redundancy factors: each request's
/// per-server cost is scaled by `factors.for_op(op)` before the phase
/// max. Neutral factors multiply by exactly 1.0, which is bit-identical
/// to the unfactored kernel.
pub fn region_cost_factored(
    requests: &[ReqView],
    params: &CostParams,
    pair: StripePair,
    factors: OpFactors,
    cutoff: f64,
    scratch: &mut CostScratch,
) -> Option<f64> {
    // Rebuild the candidate layout in place: HServers 0..m with stripe h,
    // then SServers m..m+n with stripe s (the `CostParams::layout_for`
    // shape, without its allocations).
    let m = params.m;
    let assigns = (0..m)
        .map(|i| (ServerId(i), pair.h))
        .chain((m..m + params.n).map(|i| (ServerId(i), pair.s)));
    if !scratch.layout.rebuild(assigns) {
        return Some(f64::INFINITY);
    }
    let servers = params.m + params.n;
    if scratch.acc.len() < servers {
        scratch.acc.resize(servers, 0.0);
    }
    let mut total = 0.0;
    let mut i = 0;
    while i < requests.len() {
        let c = (requests[i].concurrency.max(1)) as usize;
        let mut j = i;
        scratch.touched.clear();
        while j < requests.len() && j - i < c && requests[j].concurrency.max(1) as usize == c {
            let req = &requests[j];
            let factor = factors.for_op(req.op);
            scratch
                .layout
                .per_server_load_into(req.offset, req.len, &mut scratch.loads);
            for (server, bytes, runs) in scratch.loads.entries() {
                let hserver = params.is_hserver(server);
                let cost = factor
                    * (f64::from(runs) * params.alpha(hserver, req.op)
                        + bytes as f64 * params.unit_time(hserver, req.op));
                if scratch.acc[server.0] == 0.0 {
                    scratch.touched.push(server.0);
                }
                scratch.acc[server.0] += cost;
            }
            j += 1;
        }
        let mut phase_max = 0.0f64;
        for &s in &scratch.touched {
            phase_max = phase_max.max(scratch.acc[s]);
            scratch.acc[s] = 0.0;
        }
        total += phase_max;
        // Early exit: phase costs are non-negative, so once the running
        // sum strictly exceeds the cutoff the final total must too. The
        // accumulators were reset above, so the scratch stays clean.
        if total > cutoff {
            return None;
        }
        i = j;
    }
    Some(total)
}

/// Admissible per-candidate lower bounds on the region cost, precomputed
/// once per region. A candidate pair only determines *which* server
/// classes participate (H iff `h > 0`, S iff `s > 0`), so three floors —
/// one per participation case — cover every candidate:
///
/// * **byte floor** — each phase's cost is `max_i acc_i ≥ Σ_i acc_i / P`
///   over the `P` participating servers, and `Σ_i acc_i` is at least the
///   phase's bytes times the cheapest participating per-byte time
///   (network + storage). This is the data-distribution-independent
///   network/transfer floor.
/// * **startup floor** — any nonempty request pays at least one storage
///   startup on some participating server.
///
/// Each phase contributes `max(byte floor, startup floor)`; phases sum.
/// Both floors hold for *every* possible distribution of bytes over the
/// participating servers, so `for_pair(..) ≤ region_cost(..)` always —
/// pruning on a strict comparison against an exact incumbent can never
/// drop the winner or a tie-break candidate.
#[derive(Debug, Clone, Copy)]
struct RegionLowerBounds {
    both: f64,
    h_only: f64,
    s_only: f64,
}

impl RegionLowerBounds {
    fn compute(requests: &[ReqView], params: &CostParams, factors: OpFactors) -> Self {
        // (participating server count, unit minima, alpha minima) per
        // case. The kernel scales each request's per-server cost by its
        // op factor, so the floors carry the same factor on their per-op
        // minima — admissible for any positive factors, not just ≥ 1.
        let case = |use_h: bool, use_s: bool, p: usize| -> CaseFloor {
            let unit = |op: IoOp| match (use_h, use_s) {
                (true, true) => params.unit_time(true, op).min(params.unit_time(false, op)),
                (true, false) => params.unit_time(true, op),
                _ => params.unit_time(false, op),
            };
            let alpha = |op: IoOp| match (use_h, use_s) {
                (true, true) => params.alpha(true, op).min(params.alpha(false, op)),
                (true, false) => params.alpha(true, op),
                _ => params.alpha(false, op),
            };
            CaseFloor {
                n_part: p.max(1) as f64,
                usable: p > 0,
                unit_r: unit(IoOp::Read) * factors.read,
                unit_w: unit(IoOp::Write) * factors.write,
                alpha_r: alpha(IoOp::Read) * factors.read,
                alpha_w: alpha(IoOp::Write) * factors.write,
            }
        };
        let cases = [
            case(true, true, params.m + params.n),
            case(true, false, params.m),
            case(false, true, params.n),
        ];
        let mut totals = [0.0f64; 3];
        let mut i = 0;
        while i < requests.len() {
            // Identical phase grouping to `region_cost_bounded`.
            let c = (requests[i].concurrency.max(1)) as usize;
            let mut j = i;
            let (mut rb, mut wb) = (0u64, 0u64);
            let (mut has_r, mut has_w) = (false, false);
            while j < requests.len() && j - i < c && requests[j].concurrency.max(1) as usize == c {
                let req = &requests[j];
                if req.len > 0 {
                    match req.op {
                        IoOp::Read => {
                            rb += req.len;
                            has_r = true;
                        }
                        IoOp::Write => {
                            wb += req.len;
                            has_w = true;
                        }
                    }
                }
                j += 1;
            }
            for (t, f) in totals.iter_mut().zip(&cases) {
                if !f.usable {
                    continue; // case unreachable for this cluster shape
                }
                let byte_floor = (rb as f64 * f.unit_r + wb as f64 * f.unit_w) / f.n_part;
                let startup_floor = f64::max(
                    if has_r { f.alpha_r } else { 0.0 },
                    if has_w { f.alpha_w } else { 0.0 },
                );
                *t += byte_floor.max(startup_floor);
            }
            i = j;
        }
        // Tiny relative margin: the floors are mathematically strict
        // (every phase leaves at least one startup or the max/avg gap on
        // the table), but this keeps pruning safe even if a future cost
        // model change erodes that slack to within f64 rounding.
        let shave = |x: f64| x * (1.0 - 1e-9);
        RegionLowerBounds {
            both: shave(totals[0]),
            h_only: shave(totals[1]),
            s_only: shave(totals[2]),
        }
    }

    /// The floor for one candidate pair. Degenerate pairs (no
    /// participating server) are floored at `+∞` — their exact cost is
    /// `+∞` too, so pruning them is still exact.
    fn for_pair(&self, params: &CostParams, pair: StripePair) -> f64 {
        let h_active = pair.h > 0 && params.m > 0;
        let s_active = pair.s > 0 && params.n > 0;
        match (h_active, s_active) {
            (true, true) => self.both,
            (true, false) => self.h_only,
            (false, true) => self.s_only,
            (false, false) => f64::INFINITY,
        }
    }
}

/// Per-participation-case constants for [`RegionLowerBounds`].
#[derive(Debug, Clone, Copy)]
struct CaseFloor {
    n_part: f64,
    usable: bool,
    unit_r: f64,
    unit_w: f64,
    alpha_r: f64,
    alpha_w: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage_model::IoOp;

    fn params() -> CostParams {
        CostParams {
            m: 6,
            n: 2,
            t: 1.0 / 117.0e6,
            alpha_h: 12.7e-3,
            beta_h: 1.0 / 90.0e6,
            alpha_sr: 80.0e-6,
            beta_sr: 1.0 / 700.0e6,
            alpha_sw: 170.0e-6,
            beta_sw: 1.0 / 450.0e6,
        }
    }

    fn reqs(len: u64, op: IoOp, conc: u32, count: usize) -> Vec<ReqView> {
        (0..count)
            .map(|i| ReqView { offset: i as u64 * len, len, op, concurrency: conc })
            .collect()
    }

    #[test]
    fn empty_region_yields_none() {
        assert!(rssd(&[], &params(), &RssdConfig::default()).is_none());
    }

    #[test]
    fn result_respects_bounds_and_step() {
        let p = params();
        let cfg = RssdConfig::default();
        let rs = reqs(256 << 10, IoOp::Write, 8, 32);
        let r = rssd(&rs, &p, &cfg).unwrap();
        let (bh, bs) = bounds(256 << 10, &p, &cfg);
        assert!(r.pair.h <= bh);
        assert!(r.pair.s <= bs.max(r.pair.h + cfg.step));
        assert_eq!(r.pair.h % cfg.step, 0);
        assert_eq!(r.pair.s % cfg.step, 0);
        assert!(r.pair.s > r.pair.h);
        // Pin the exact candidate set: for each h lane the s grid covers
        // (h, B_s] — but never fewer than one candidate (the minimal legal
        // pair <h, h + step> is scored even when B_s < h + step, which
        // here is exactly the h = B_h lane).
        let expected: u64 = (0..=bh / cfg.step)
            .map(|lane| ((bs - lane * cfg.step) / cfg.step).max(1))
            .sum();
        assert_eq!(r.evaluated, expected);
        assert_eq!(expected, 2081, "65 lanes: 64 + 63 + … + 1 + 1");
        assert!(r.pruned <= r.evaluated);
    }

    #[test]
    fn small_requests_prefer_ssd_only() {
        // 16 KiB requests: any positive h forces HDD startups; the h = 0
        // extreme must win by a wide margin.
        let p = params();
        let r = rssd(&reqs(16 << 10, IoOp::Read, 8, 64), &p, &RssdConfig::default()).unwrap();
        assert_eq!(r.pair.h, 0, "got {:?}", r.pair);
    }

    #[test]
    fn large_requests_involve_hservers() {
        // 8 MiB requests at low concurrency: HDD streaming bandwidth is
        // worth the startup, so h > 0.
        let p = params();
        let r = rssd(&reqs(8 << 20, IoOp::Read, 1, 8), &p, &RssdConfig::default()).unwrap();
        assert!(r.pair.h > 0, "got {:?}", r.pair);
        assert!(r.pair.s > r.pair.h, "SServers get the bigger stripe");
    }

    #[test]
    fn rssd_never_worse_than_def_under_the_model() {
        let p = params();
        for (len, conc) in [(16u64 << 10, 8u32), (256 << 10, 32), (1 << 20, 4)] {
            let rs = reqs(len, IoOp::Write, conc, 24);
            let opt = rssd(&rs, &p, &RssdConfig::default()).unwrap();
            let def = region_cost(&rs, &p, StripePair { h: 64 << 10, s: 64 << 10 });
            assert!(
                opt.cost <= def + 1e-12,
                "len={len} conc={conc}: opt={} def={def}",
                opt.cost
            );
        }
    }

    #[test]
    fn adaptive_bounds_switch() {
        let p = params();
        let cfg = RssdConfig::default();
        // Small r_max: bounds collapse to r_max on both classes.
        assert_eq!(bounds(128 << 10, &p, &cfg), (128 << 10, 128 << 10));
        // Large r_max: divided by M and N.
        let big = 16 << 20;
        assert_eq!(bounds(big, &p, &cfg), (big / 6, big / 2));
        // Non-adaptive (HARL-style) keeps r_max.
        let harl = RssdConfig { adaptive_bounds: false, ..cfg };
        assert_eq!(bounds(big, &p, &harl), (big, big));
    }

    #[test]
    fn deterministic_under_parallelism() {
        let p = params();
        let rs: Vec<ReqView> = (0..50)
            .map(|i| ReqView {
                offset: i * 4096,
                len: 4096 * (1 + i % 7),
                op: if i % 3 == 0 { IoOp::Read } else { IoOp::Write },
                concurrency: 1 + (i % 16) as u32,
            })
            .collect();
        let a = rssd(&rs, &p, &RssdConfig::default()).unwrap();
        let b = rssd(&rs, &p, &RssdConfig::default()).unwrap();
        assert_eq!(a.pair, b.pair);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn pruned_search_matches_unpruned_bit_for_bit() {
        let p = params();
        let workloads: Vec<Vec<ReqView>> = vec![
            reqs(16 << 10, IoOp::Read, 8, 64),
            reqs(256 << 10, IoOp::Write, 8, 32),
            (0..60)
                .map(|i| ReqView {
                    offset: i * 8192,
                    len: 4096 * (1 + i % 9),
                    op: if i % 4 == 0 { IoOp::Read } else { IoOp::Write },
                    concurrency: 1 + (i % 8) as u32,
                })
                .collect(),
        ];
        for rs in &workloads {
            let pruned = rssd(rs, &p, &RssdConfig::default()).unwrap();
            let plain = rssd(
                rs,
                &p,
                &RssdConfig { pruning: false, ..RssdConfig::default() },
            )
            .unwrap();
            assert_eq!(plain.pruned, 0, "pruning off must not prune");
            assert_eq!(pruned.pair, plain.pair);
            assert_eq!(pruned.cost.to_bits(), plain.cost.to_bits(), "bit-identical cost");
            assert_eq!(pruned.evaluated, plain.evaluated, "grid size is prune-independent");
            assert!(pruned.pruned <= pruned.evaluated);
        }
    }

    #[test]
    fn lower_bound_is_admissible() {
        let p = params();
        let rs: Vec<ReqView> = (0..40)
            .map(|i| ReqView {
                offset: i * 16384,
                len: 1024 * (1 + i % 33),
                op: if i % 2 == 0 { IoOp::Read } else { IoOp::Write },
                concurrency: 1 + (i % 6) as u32,
            })
            .collect();
        let lb = RegionLowerBounds::compute(&rs, &p, OpFactors::neutral());
        for h in [0u64, 4 << 10, 64 << 10] {
            for s in [4u64 << 10, 32 << 10, 128 << 10] {
                if s <= h {
                    continue;
                }
                let pair = StripePair { h, s };
                let cost = region_cost(&rs, &p, pair);
                assert!(
                    lb.for_pair(&p, pair) <= cost,
                    "floor {} above cost {cost} for {pair:?}",
                    lb.for_pair(&p, pair)
                );
            }
        }
    }

    #[test]
    fn neutral_factors_are_bit_identical_to_the_unfactored_search() {
        let p = params();
        let rs: Vec<ReqView> = (0..48)
            .map(|i| ReqView {
                offset: i * 12288,
                len: 4096 * (1 + i % 11),
                op: if i % 3 == 0 { IoOp::Read } else { IoOp::Write },
                concurrency: 1 + (i % 5) as u32,
            })
            .collect();
        let plain = rssd(&rs, &p, &RssdConfig::default()).unwrap();
        let neutral = rssd(
            &rs,
            &p,
            &RssdConfig::default().with_factors(OpFactors { read: 1.0, write: 1.0 }),
        )
        .unwrap();
        assert_eq!(plain.pair, neutral.pair);
        assert_eq!(plain.cost.to_bits(), neutral.cost.to_bits());
    }

    #[test]
    fn single_op_factors_scale_cost_without_moving_the_winner() {
        // A uniform factor on a single-op workload multiplies every
        // candidate's cost by the same constant, so the argmin must not
        // move and the cost scales (up to fp association).
        let p = params();
        let rs = reqs(256 << 10, IoOp::Write, 8, 32);
        let base = rssd(&rs, &p, &RssdConfig::default()).unwrap();
        let amp = rssd(
            &rs,
            &p,
            &RssdConfig::default().with_factors(OpFactors { read: 1.0, write: 3.0 }),
        )
        .unwrap();
        assert_eq!(base.pair, amp.pair);
        let ratio = amp.cost / base.cost;
        assert!((ratio - 3.0).abs() < 1e-9, "ratio={ratio}");
        // Read factor is inert on an all-write region.
        let inert = rssd(
            &rs,
            &p,
            &RssdConfig::default().with_factors(OpFactors { read: 5.0, write: 1.0 }),
        )
        .unwrap();
        assert_eq!(base.pair, inert.pair);
        assert_eq!(base.cost.to_bits(), inert.cost.to_bits());
    }

    #[test]
    fn factored_pruning_stays_exact() {
        let p = params();
        let rs: Vec<ReqView> = (0..60)
            .map(|i| ReqView {
                offset: i * 8192,
                len: 4096 * (1 + i % 9),
                op: if i % 4 == 0 { IoOp::Read } else { IoOp::Write },
                concurrency: 1 + (i % 8) as u32,
            })
            .collect();
        let factors = OpFactors { read: 2.5, write: 1.5 };
        let pruned = rssd(&rs, &p, &RssdConfig::default().with_factors(factors)).unwrap();
        let plain = rssd(
            &rs,
            &p,
            &RssdConfig { pruning: false, ..RssdConfig::default() }.with_factors(factors),
        )
        .unwrap();
        assert_eq!(pruned.pair, plain.pair);
        assert_eq!(pruned.cost.to_bits(), plain.cost.to_bits());
        // The scaled floor stays below every scaled exact cost.
        let lb = RegionLowerBounds::compute(&rs, &p, factors);
        let mut scratch = CostScratch::new();
        for h in [0u64, 8 << 10, 32 << 10] {
            for s in [8u64 << 10, 64 << 10] {
                if s <= h {
                    continue;
                }
                let pair = StripePair { h, s };
                let cost =
                    region_cost_factored(&rs, &p, pair, factors, f64::INFINITY, &mut scratch)
                        .unwrap();
                assert!(lb.for_pair(&p, pair) <= cost, "{pair:?}");
            }
        }
    }

    #[test]
    fn write_amplification_steers_mixed_workloads_toward_reads() {
        // Mixed region: large sequential reads (which like HDDs) plus
        // small writes. Amplifying writes (a redundant layout's parity
        // fan-out) must never *lower* the modelled cost.
        let p = params();
        let mut rs = reqs(4 << 20, IoOp::Read, 2, 8);
        rs.extend(reqs(16 << 10, IoOp::Write, 8, 32));
        let base = rssd(&rs, &p, &RssdConfig::default()).unwrap();
        let amp = rssd(
            &rs,
            &p,
            &RssdConfig::default().with_factors(OpFactors { read: 1.0, write: 4.0 }),
        )
        .unwrap();
        assert!(amp.cost >= base.cost, "amp={} base={}", amp.cost, base.cost);
    }

    #[test]
    fn bounded_cost_early_exits_below_true_cost() {
        let p = params();
        let rs = reqs(128 << 10, IoOp::Write, 4, 16);
        let pair = StripePair { h: 16 << 10, s: 64 << 10 };
        let exact = region_cost(&rs, &p, pair);
        let mut scratch = CostScratch::new();
        assert_eq!(
            region_cost_bounded(&rs, &p, pair, f64::INFINITY, &mut scratch),
            Some(exact)
        );
        assert_eq!(region_cost_bounded(&rs, &p, pair, exact / 2.0, &mut scratch), None);
        // At exactly the true cost the comparison is strict: no exit.
        assert_eq!(region_cost_bounded(&rs, &p, pair, exact, &mut scratch), Some(exact));
        // The scratch stays clean after an early exit.
        assert_eq!(
            region_cost_bounded(&rs, &p, pair, f64::INFINITY, &mut scratch),
            Some(exact)
        );
    }

    #[test]
    fn finer_step_never_hurts() {
        let p = params();
        let rs = reqs(96 << 10, IoOp::Write, 16, 32);
        let coarse = rssd(&rs, &p, &RssdConfig { step: 32 << 10, ..Default::default() }).unwrap();
        let fine = rssd(&rs, &p, &RssdConfig { step: 4 << 10, ..Default::default() }).unwrap();
        assert!(fine.cost <= coarse.cost + 1e-12);
        assert!(fine.evaluated > coarse.evaluated);
    }

    #[test]
    fn hserver_only_cluster_still_optimizes() {
        // n = 0: the <h, s> pair degenerates; s candidates are dead
        // (no SServers), so the layout is H-only and the search still
        // returns a finite answer.
        let p = CostParams { m: 4, n: 0, ..params() };
        let r = rssd(&reqs(256 << 10, IoOp::Read, 4, 8), &p, &RssdConfig::default()).unwrap();
        assert!(r.cost.is_finite());
        assert!(r.pair.h > 0, "H-only cluster needs h > 0: {:?}", r.pair);
    }
}
