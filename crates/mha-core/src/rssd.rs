//! Algorithm 2: Region Stripe Size Determination (RSSD).
//!
//! Exhaustive search over candidate `<h, s>` stripe pairs in `step`
//! increments, scoring each pair by the summed Eq. 2 cost of every request
//! in the region, and keeping the cheapest. Faithful to the paper:
//!
//! * `h` starts at **0** — dispatching data only on SServers is a legal
//!   extreme when it wins,
//! * `s` starts at `h + step`, keeping the SServer stripe strictly larger
//!   (SServers are faster; a smaller stripe there could only add
//!   imbalance),
//! * bounds adapt to the region's largest request `r_max`: small regions
//!   search up to `r_max` on both classes (more candidates, bounded
//!   space); large regions search up to `r_max/M` and `r_max/N`, which
//!   keeps every server involved for big requests and prunes pointless
//!   candidates,
//! * the default `step` is 4 KiB and is user-configurable.
//!
//! The outer loop is data-parallel (rayon): candidate pairs are scored
//! independently, with a deterministic reduction (min by cost, ties to
//! the smaller pair) so parallelism never changes the result.

use crate::cost::{CostParams, ReqView};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A `<h, s>` stripe pair, bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StripePair {
    /// Stripe size on each HServer (0 = HServers excluded).
    pub h: u64,
    /// Stripe size on each SServer.
    pub s: u64,
}

/// RSSD tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RssdConfig {
    /// Search step, bytes (paper default 4 KiB).
    pub step: u64,
    /// Threshold multiplier for the adaptive bounds: regions with
    /// `r_max < (M + N) * small_region_unit` use `r_max` as both bounds.
    /// The paper uses 64 KiB.
    pub small_region_unit: u64,
    /// Use the adaptive bounds of the paper (true) or the plain
    /// `r_max` bound of HARL (false) — the `ablation_bounds` knob.
    pub adaptive_bounds: bool,
    /// Replace the region's `r_max` with a fixed value before computing
    /// bounds. HARL bounds its search by the *average* request size; MHA
    /// leaves this `None` and uses the true maximum.
    pub bound_override: Option<u64>,
}

impl Default for RssdConfig {
    fn default() -> Self {
        RssdConfig {
            step: 4 << 10,
            small_region_unit: 64 << 10,
            adaptive_bounds: true,
            bound_override: None,
        }
    }
}

/// Result of a stripe search.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RssdResult {
    /// The winning pair.
    pub pair: StripePair,
    /// Its total region cost (sum of Eq. 2 over requests), seconds.
    pub cost: f64,
    /// Number of candidate pairs evaluated.
    pub evaluated: u64,
}

/// Compute the search bounds `(B_h, B_s)` for a region with largest
/// request `r_max`.
pub fn bounds(r_max: u64, params: &CostParams, cfg: &RssdConfig) -> (u64, u64) {
    let servers = (params.m + params.n) as u64;
    if !cfg.adaptive_bounds || r_max < servers * cfg.small_region_unit {
        (r_max, r_max)
    } else {
        (
            r_max / (params.m.max(1) as u64),
            r_max / (params.n.max(1) as u64),
        )
    }
}

/// Run RSSD over the region's requests. Returns `None` for an empty
/// region (nothing to optimize).
pub fn rssd(requests: &[ReqView], params: &CostParams, cfg: &RssdConfig) -> Option<RssdResult> {
    if requests.is_empty() {
        return None;
    }
    let r_max = cfg
        .bound_override
        .unwrap_or_else(|| requests.iter().map(|r| r.len).max().expect("nonempty"));
    let step = cfg.step.max(1);
    let (b_h, b_s) = bounds(r_max.max(step), params, cfg);
    // Candidate h values: 0, step, 2·step, … ≤ B_h (h = 0 is the
    // SServers-only extreme). When the cluster has no SServers the pair
    // degenerates to <h, 0>, searched the same way with roles flipped.
    let h_candidates: Vec<u64> = (0..=b_h / step).map(|i| i * step).collect();

    let best = h_candidates
        .into_par_iter()
        .map(|h| {
            let mut local_best: Option<(f64, StripePair)> = None;
            let mut evaluated = 0u64;
            let mut s = h + step;
            while s <= b_s.max(h + step) {
                let pair = StripePair { h, s };
                let cost = region_cost(requests, params, pair);
                evaluated += 1;
                let better = match local_best {
                    None => true,
                    Some((c, _)) => cost < c,
                };
                if better && cost.is_finite() {
                    local_best = Some((cost, pair));
                }
                if s >= b_s {
                    break;
                }
                s += step;
            }
            (local_best, evaluated)
        })
        .reduce(
            || (None, 0),
            |a, b| {
                let pick = match (a.0, b.0) {
                    (None, x) => x,
                    (x, None) => x,
                    (Some((ca, pa)), Some((cb, pb))) => {
                        // Deterministic: strictly-lower cost wins; ties go
                        // to the lexicographically smaller pair.
                        if cb < ca || (cb == ca && (pb.h, pb.s) < (pa.h, pa.s)) {
                            Some((cb, pb))
                        } else {
                            Some((ca, pa))
                        }
                    }
                };
                (pick, a.1 + b.1)
            },
        );

    let (opt, evaluated) = best;
    let (cost, pair) = opt?;
    Some(RssdResult { pair, cost, evaluated })
}

/// Total region cost: the sum of per-phase Eq. 2 costs.
///
/// This is the paper's cost model "extended by considering I/O
/// concurrency" evaluated *exactly*: requests are walked in trace order
/// and grouped into phases of `concurrency` consecutive requests (the
/// requests issued simultaneously); every request in a phase is
/// decomposed onto the candidate layout at its **actual** offset, and the
/// phase costs `max_i(p_i·α_i + s_i·(t + β_i))` over the accumulated
/// per-server startups `p_i` and bytes `s_i` — the phase finishes with
/// its slowest server. Using actual offsets (rather than a statistical
/// mates term) lets the search see alignment resonance: a stripe pair
/// that systematically lands every request's large piece on the same
/// server scores as badly as it will perform.
///
/// Concurrency-1 views (HARL's model predates the extension) degenerate
/// to the plain per-request Eq. 2 sum.
pub fn region_cost(requests: &[ReqView], params: &CostParams, pair: StripePair) -> f64 {
    let Some(layout) = params.layout_for(pair.h, pair.s) else {
        return f64::INFINITY;
    };
    // (startup_time_sum, byte_time_sum) per server, reused across phases.
    let servers = params.m + params.n;
    let mut acc = vec![0.0f64; servers];
    let mut total = 0.0;
    let mut i = 0;
    while i < requests.len() {
        let c = (requests[i].concurrency.max(1)) as usize;
        let mut j = i;
        let mut touched: Vec<usize> = Vec::new();
        while j < requests.len() && j - i < c && requests[j].concurrency.max(1) as usize == c {
            let req = &requests[j];
            for (server, bytes, runs) in layout.per_server_load(req.offset, req.len) {
                let hserver = params.is_hserver(server);
                let cost = f64::from(runs) * params.alpha(hserver, req.op)
                    + bytes as f64 * params.unit_time(hserver, req.op);
                if acc[server.0] == 0.0 {
                    touched.push(server.0);
                }
                acc[server.0] += cost;
            }
            j += 1;
        }
        let mut phase_max = 0.0f64;
        for &s in &touched {
            phase_max = phase_max.max(acc[s]);
            acc[s] = 0.0;
        }
        total += phase_max;
        i = j;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage_model::IoOp;

    fn params() -> CostParams {
        CostParams {
            m: 6,
            n: 2,
            t: 1.0 / 117.0e6,
            alpha_h: 12.7e-3,
            beta_h: 1.0 / 90.0e6,
            alpha_sr: 80.0e-6,
            beta_sr: 1.0 / 700.0e6,
            alpha_sw: 170.0e-6,
            beta_sw: 1.0 / 450.0e6,
        }
    }

    fn reqs(len: u64, op: IoOp, conc: u32, count: usize) -> Vec<ReqView> {
        (0..count)
            .map(|i| ReqView { offset: i as u64 * len, len, op, concurrency: conc })
            .collect()
    }

    #[test]
    fn empty_region_yields_none() {
        assert!(rssd(&[], &params(), &RssdConfig::default()).is_none());
    }

    #[test]
    fn result_respects_bounds_and_step() {
        let p = params();
        let cfg = RssdConfig::default();
        let rs = reqs(256 << 10, IoOp::Write, 8, 32);
        let r = rssd(&rs, &p, &cfg).unwrap();
        let (bh, bs) = bounds(256 << 10, &p, &cfg);
        assert!(r.pair.h <= bh);
        assert!(r.pair.s <= bs.max(r.pair.h + cfg.step));
        assert_eq!(r.pair.h % cfg.step, 0);
        assert_eq!(r.pair.s % cfg.step, 0);
        assert!(r.pair.s > r.pair.h);
        assert!(r.evaluated > 0);
    }

    #[test]
    fn small_requests_prefer_ssd_only() {
        // 16 KiB requests: any positive h forces HDD startups; the h = 0
        // extreme must win by a wide margin.
        let p = params();
        let r = rssd(&reqs(16 << 10, IoOp::Read, 8, 64), &p, &RssdConfig::default()).unwrap();
        assert_eq!(r.pair.h, 0, "got {:?}", r.pair);
    }

    #[test]
    fn large_requests_involve_hservers() {
        // 8 MiB requests at low concurrency: HDD streaming bandwidth is
        // worth the startup, so h > 0.
        let p = params();
        let r = rssd(&reqs(8 << 20, IoOp::Read, 1, 8), &p, &RssdConfig::default()).unwrap();
        assert!(r.pair.h > 0, "got {:?}", r.pair);
        assert!(r.pair.s > r.pair.h, "SServers get the bigger stripe");
    }

    #[test]
    fn rssd_never_worse_than_def_under_the_model() {
        let p = params();
        for (len, conc) in [(16u64 << 10, 8u32), (256 << 10, 32), (1 << 20, 4)] {
            let rs = reqs(len, IoOp::Write, conc, 24);
            let opt = rssd(&rs, &p, &RssdConfig::default()).unwrap();
            let def = region_cost(&rs, &p, StripePair { h: 64 << 10, s: 64 << 10 });
            assert!(
                opt.cost <= def + 1e-12,
                "len={len} conc={conc}: opt={} def={def}",
                opt.cost
            );
        }
    }

    #[test]
    fn adaptive_bounds_switch() {
        let p = params();
        let cfg = RssdConfig::default();
        // Small r_max: bounds collapse to r_max on both classes.
        assert_eq!(bounds(128 << 10, &p, &cfg), (128 << 10, 128 << 10));
        // Large r_max: divided by M and N.
        let big = 16 << 20;
        assert_eq!(bounds(big, &p, &cfg), (big / 6, big / 2));
        // Non-adaptive (HARL-style) keeps r_max.
        let harl = RssdConfig { adaptive_bounds: false, ..cfg };
        assert_eq!(bounds(big, &p, &harl), (big, big));
    }

    #[test]
    fn deterministic_under_parallelism() {
        let p = params();
        let rs: Vec<ReqView> = (0..50)
            .map(|i| ReqView {
                offset: i * 4096,
                len: 4096 * (1 + i % 7),
                op: if i % 3 == 0 { IoOp::Read } else { IoOp::Write },
                concurrency: 1 + (i % 16) as u32,
            })
            .collect();
        let a = rssd(&rs, &p, &RssdConfig::default()).unwrap();
        let b = rssd(&rs, &p, &RssdConfig::default()).unwrap();
        assert_eq!(a.pair, b.pair);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn finer_step_never_hurts() {
        let p = params();
        let rs = reqs(96 << 10, IoOp::Write, 16, 32);
        let coarse = rssd(&rs, &p, &RssdConfig { step: 32 << 10, ..Default::default() }).unwrap();
        let fine = rssd(&rs, &p, &RssdConfig { step: 4 << 10, ..Default::default() }).unwrap();
        assert!(fine.cost <= coarse.cost + 1e-12);
        assert!(fine.evaluated > coarse.evaluated);
    }

    #[test]
    fn hserver_only_cluster_still_optimizes() {
        // n = 0: the <h, s> pair degenerates; s candidates are dead
        // (no SServers), so the layout is H-only and the search still
        // returns a finite answer.
        let p = CostParams { m: 4, n: 0, ..params() };
        let r = rssd(&reqs(256 << 10, IoOp::Read, 4, 8), &p, &RssdConfig::default()).unwrap();
        assert!(r.cost.is_finite());
        assert!(r.pair.h > 0, "H-only cluster needs h > 0: {:?}", r.pair);
    }
}
