//! # mha-core — the paper's contribution
//!
//! MHA (Migratory Heterogeneity-Aware data layout) and its baselines,
//! implemented over the `pfs-sim` substrate:
//!
//! * [`pattern`] — request features and the normalized Euclidean distance
//!   of Eq. 1,
//! * [`grouping`] — Algorithm 1: iterative request grouping (bounded
//!   k-means on (size, concurrency)),
//! * [`cost`] — Table I parameters and the Eq. 2 access cost model,
//!   calibrated from device/network models,
//! * [`rssd`] — Algorithm 2: Region Stripe Size Determination (exhaustive
//!   `<h, s>` search with adaptive bounds),
//! * [`region`] — region construction, the Data Reordering Table (DRT)
//!   and Region Stripe Table (RST), with kvstore persistence,
//! * [`redirect`] — the runtime I/O redirector (a [`pfs_sim::Resolver`]),
//! * [`schemes`] — the four planners evaluated in the paper: DEF, AAL,
//!   HARL and MHA, behind one [`schemes::LayoutPlanner`] trait,
//! * [`persist`] — crash-consistent pipeline persistence: versioned
//!   checksummed DRT/RST/plan generations with atomic commit, the
//!   write-ahead migration journal, and [`persist::recover`],
//! * [`online`] — the online loop: windowed drift detection,
//!   centroid-seeded incremental regrouping with per-group RSSD reuse,
//! * [`dynamic`] — epoch-driven dynamic optimization and the lazy
//!   on-access migrator ([`dynamic::LazyMigrator`]) that defers each
//!   journaled extent copy to its first replayed access,
//! * [`tenant`] — the per-tenant pipeline ([`tenant::TenantPipeline`])
//!   packaging planner + migrator as a [`pfs_sim::TenantRuntime`] for
//!   the multi-tenant [`pfs_sim::LayoutService`].
//!
//! The intended flow (the paper's five phases):
//!
//! ```text
//! trace (iotrace) ──► planner.plan() ──► Plan { layouts, resolver }
//!                                          │ install into Cluster MDS
//!                                          ▼
//!                    ReplaySession::run(cluster, trace, resolver)
//! ```
//!
//! [`schemes::Evaluation`] wraps the whole flow in one builder — and can
//! inject a [`pfs_sim::FaultPlan`] and re-plan around the degraded
//! servers it implies ([`schemes::PlannerContext::with_health`]).

pub mod cost;
pub mod dynamic;
pub mod grouping;
pub mod online;
pub mod pattern;
pub mod persist;
pub mod rebuild;
pub mod redirect;
pub mod region;
pub mod rssd;
pub mod schemes;
pub mod tenant;

pub use cost::{placement_factors, CostParams, OpFactors, ReqView};
pub use dynamic::{
    run_dynamic, run_dynamic_durable, run_lazy_durable, DynamicConfig, DynamicReport,
    LazyMigrator, PendingRedirect,
};
pub use online::{
    OnlineConfig, OnlineConfigBuilder, OnlineConfigError, OnlinePlanner, Replan, ReplanStats,
    WindowSig,
};
pub use persist::{
    recover, recover_tenant, CommitPoint, KillSwitch, PersistError, PipelineStore,
    RecoveryOutcome, TenantStore,
};
pub use grouping::{
    group_requests, group_requests_parallel, group_requests_seeded, group_requests_serial,
    GroupIndex, Grouping, GroupingConfig,
};
pub use pattern::{FeatureSpace, ReqFeature};
pub use rebuild::{file_sizes, rebuild_onto_spare, RebuildOutcome};
pub use redirect::DrtResolver;
pub use region::{CompactDrt, Drt, DrtEntry, Rst};
pub use rssd::{
    region_cost, region_cost_bounded, region_cost_factored, rssd, CostScratch, RssdConfig,
    RssdResult, StripePair,
};
pub use schemes::{apply_plan, Evaluation, LayoutPlanner, Plan, PlanResolver, PlannerContext, Scheme};
pub use tenant::TenantPipeline;
