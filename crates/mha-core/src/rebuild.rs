//! Journaled reconstruction of a lost server onto a spare.
//!
//! When a server is permanently lost, every *redundant* layout
//! (replicated or erasure-coded) that references it can be repaired: the
//! lost units are recomputed from the surviving copies or shards and
//! rewritten onto a spare server, after which the layout simply swaps
//! the dead server for the spare ([`pfs_sim::LayoutSpec::swap_server`]).
//! Striped layouts have nothing to rebuild from — their data is gone —
//! so they are left untouched (replay surfaces them as timeouts, as
//! before).
//!
//! The rebuild rides the migration write-ahead journal
//! ([`crate::persist::PipelineStore::journal_batch`] /
//! [`PipelineStore::commit_batch`]): one batch per affected file, in
//! `FileId` order, each journaling a single [`DrtEntry`] whose `length`
//! is the byte count being reconstructed for that file
//! (`o_file == r_file`, offsets 0 — the entry is an *intent marker* for
//! crash accounting, not a relocation; a rebuild changes where redundant
//! copies live, never the file's logical mapping). The discipline is
//!
//! 1. journal the file's intent entry,
//! 2. reconstruct (accounted in bytes; see below),
//! 3. write the batch's commit record (fsynced),
//! 4. swap the dead server for the spare in the in-memory layout.
//!
//! A crash anywhere in the flow is recovered by *re-running*
//! [`rebuild_onto_spare`] with the same pre-rebuild layouts (what a
//! restarted node loads from its persisted plan): batches whose commit
//! record survived are recognized in the journal and skipped — their
//! copies are durable, only the layout swap is re-applied — so no byte
//! is reconstructed twice. The journal is cleared once every affected
//! file is rebuilt. Because batch ids are positions in the deterministic
//! affected-file order, resuming with the same inputs always maps
//! surviving commit records back to the right files.
//!
//! Reconstruction traffic is **accounted, not replayed**: the simulator
//! charges degraded reads and decode time on the access path (the replay
//! cores) and prices rebuild bandwidth here as byte totals — a
//! replicated file reads its lost bytes once from a surviving copy,
//! while an EC(`k`, `m`) file reads `k` shard-bytes per reconstructed
//! byte. Benches fold these totals into their figures; the spare's
//! foreground slowdown during a rebuild is modelled with a
//! [`simrt::FaultPlan`] degraded-server entry.
//!
//! The rebuild shares the migration journal namespace, so a rebuild must
//! not be interleaved with a journaled migration on the same store (batch
//! ids would collide). Run one to completion before starting the other.

use crate::persist::{PersistError, PipelineStore};
use crate::region::DrtEntry;
use iotrace::{FileId, Trace};
use pfs_sim::{LayoutSpec, Placement, ServerId};
use std::collections::{BTreeMap, HashSet};

/// What a completed [`rebuild_onto_spare`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebuildOutcome {
    /// Redundant files that referenced the dead server (all now swapped
    /// onto the spare).
    pub files: usize,
    /// Journal batches the rebuild spans (== `files`; kept separate so
    /// callers can cross-check against the journal).
    pub batches: u32,
    /// Bytes the dead server held across the affected files' primary
    /// stripes — the data the rebuild regenerates.
    pub bytes_lost: u64,
    /// Bytes read from surviving copies/shards *by this run* (committed
    /// batches found in the journal on resume contribute nothing).
    pub bytes_read: u64,
    /// Bytes written onto the spare *by this run*.
    pub bytes_written: u64,
}

/// Per-file sizes implied by a trace: the largest `offset + len` touched
/// per file, in `FileId` order. The usual source of
/// [`rebuild_onto_spare`]'s `sizes` argument.
pub fn file_sizes(trace: &Trace) -> Vec<(FileId, u64)> {
    let mut sizes: BTreeMap<FileId, u64> = BTreeMap::new();
    for r in trace.records() {
        let end = r.offset + r.len;
        let e = sizes.entry(r.file).or_insert(0);
        if end > *e {
            *e = end;
        }
    }
    sizes.into_iter().collect()
}

/// Rebuild every redundant layout that references `dead` onto `spare`,
/// journaling one batch per affected file (see the module doc for the
/// crash discipline). `layouts` is updated in place: affected entries
/// have `dead` swapped for `spare`; striped layouts and layouts that
/// never referenced `dead` are untouched. `sizes` gives each file's
/// length (files absent from it, or sized 0, hold no data and are
/// skipped).
///
/// To resume after a crash, call again with the *pre-rebuild* layouts
/// (what the persisted plan still holds) and the same `sizes` — batches
/// already committed in the journal are skipped, so the returned
/// `bytes_read`/`bytes_written` cover only the work this run performed.
///
/// # Panics
///
/// If `spare == dead`, or an affected layout already places data on
/// `spare` (one server cannot host two segments of the same round).
pub fn rebuild_onto_spare(
    store: &PipelineStore,
    layouts: &mut [(FileId, LayoutSpec)],
    sizes: &[(FileId, u64)],
    dead: ServerId,
    spare: ServerId,
) -> Result<RebuildOutcome, PersistError> {
    assert_ne!(spare, dead, "the spare must be a different server");
    let size_of =
        |f: FileId| sizes.iter().find(|(x, _)| *x == f).map(|&(_, s)| s).unwrap_or(0);

    // Affected files in FileId order — the deterministic batch
    // numbering that lets a resumed run recognize its journal.
    let mut affected: Vec<usize> = (0..layouts.len())
        .filter(|&i| {
            let (file, spec) = &layouts[i];
            !spec.placement().is_striped()
                && spec.position_of(dead).is_some()
                && size_of(*file) > 0
        })
        .collect();
    affected.sort_by_key(|&i| layouts[i].0);

    let committed: HashSet<u32> = store
        .journal()?
        .iter()
        .filter(|b| b.committed)
        .map(|b| b.batch)
        .collect();

    let mut out = RebuildOutcome::default();
    for (b, &i) in affected.iter().enumerate() {
        let batch = b as u32;
        let (file, spec) = &layouts[i];
        assert!(
            spec.position_of(spare).is_none(),
            "spare {spare:?} already holds a segment of {file:?}"
        );
        let lost = spec
            .per_server_load(0, size_of(*file))
            .iter()
            .find(|(s, _, _)| *s == dead)
            .map(|&(_, bytes, _)| bytes)
            .unwrap_or(0);
        out.bytes_lost += lost;
        if !committed.contains(&batch) {
            let entry = DrtEntry {
                o_file: *file,
                o_offset: 0,
                r_file: *file,
                r_offset: 0,
                length: lost,
            };
            store.journal_batch(batch, std::slice::from_ref(&entry))?;
            match spec.placement() {
                // One surviving copy streams the lost bytes directly.
                Placement::Replicated(_) => out.bytes_read += lost,
                // Every reconstructed byte decodes from k shard-bytes.
                Placement::ErasureCoded(k, _) => out.bytes_read += lost * k as u64,
                Placement::Striped => unreachable!("striped layouts are filtered out"),
            }
            out.bytes_written += lost;
            store.commit_batch(batch)?;
        }
        let spec = &mut layouts[i].1;
        *spec = spec.swap_server(dead, spare);
        out.files += 1;
        out.batches += 1;
    }
    store.clear_journal()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::PipelineStore;
    use iotrace::{Rank, TraceRecord};
    use simrt::SimTime;
    use storage_model::IoOp;

    fn tmp_store(tag: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("mha-rebuild-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    const STRIPE: u64 = 64 << 10;
    const N_RED: usize = 18;

    /// 18 redundant files (alternating 3x replication and EC(4+2)) over
    /// servers 0..6, plus a striped file, a redundant file that skips the
    /// victim, and an empty redundant file — the last three must survive
    /// a rebuild untouched.
    #[allow(clippy::type_complexity)]
    fn fixture() -> (Vec<(FileId, LayoutSpec)>, Vec<(FileId, u64)>) {
        let six: Vec<ServerId> = (0..6).map(ServerId).collect();
        let mut layouts = Vec::new();
        let mut sizes = Vec::new();
        for i in 0..N_RED {
            let placement = if i % 2 == 0 {
                Placement::Replicated(3)
            } else {
                Placement::ErasureCoded(4, 2)
            };
            layouts.push((
                FileId(i as u32),
                LayoutSpec::fixed(&six, STRIPE).with_placement(placement),
            ));
            sizes.push((FileId(i as u32), (i as u64 + 1) * 4 * STRIPE));
        }
        // Striped: not rebuildable, must stay on the dead server.
        layouts.push((FileId(100), LayoutSpec::fixed(&six, STRIPE)));
        sizes.push((FileId(100), 8 * STRIPE));
        // Redundant but never touched the victim.
        let others: Vec<ServerId> = [0usize, 2, 3, 4].iter().map(|&i| ServerId(i)).collect();
        layouts.push((
            FileId(101),
            LayoutSpec::fixed(&others, STRIPE).with_placement(Placement::Replicated(2)),
        ));
        sizes.push((FileId(101), 8 * STRIPE));
        // Redundant on the victim but empty.
        layouts.push((
            FileId(102),
            LayoutSpec::fixed(&six, STRIPE).with_placement(Placement::Replicated(2)),
        ));
        (layouts, sizes)
    }

    const DEAD: ServerId = ServerId(1);
    const SPARE: ServerId = ServerId(8);

    /// The byte totals the fixture's rebuild must report.
    fn expected_totals(
        layouts: &[(FileId, LayoutSpec)],
        sizes: &[(FileId, u64)],
    ) -> (u64, u64, u64) {
        let (mut lost, mut read, mut written) = (0u64, 0u64, 0u64);
        for (file, spec) in layouts.iter().take(N_RED) {
            let size = sizes.iter().find(|(f, _)| f == file).unwrap().1;
            let on_dead = spec
                .per_server_load(0, size)
                .iter()
                .find(|(s, _, _)| *s == DEAD)
                .map(|&(_, b, _)| b)
                .unwrap();
            assert!(on_dead > 0, "fixture file {file:?} must load the victim");
            lost += on_dead;
            read += match spec.placement() {
                Placement::Replicated(_) => on_dead,
                Placement::ErasureCoded(k, _) => on_dead * k as u64,
                Placement::Striped => unreachable!(),
            };
            written += on_dead;
        }
        (lost, read, written)
    }

    fn assert_fully_swapped(layouts: &[(FileId, LayoutSpec)], originals: &[(FileId, LayoutSpec)]) {
        for (i, (file, spec)) in layouts.iter().enumerate() {
            if i < N_RED {
                assert!(spec.position_of(DEAD).is_none(), "{file:?} still references the victim");
                assert!(spec.position_of(SPARE).is_some(), "{file:?} missing the spare");
                assert_eq!(spec.placement(), originals[i].1.placement(), "{file:?}");
                assert_eq!(spec.max_stripe(), originals[i].1.max_stripe(), "{file:?}");
            } else {
                // Striped, victim-free, and empty files are untouched.
                assert_eq!(spec, &originals[i].1, "{file:?} must not change");
            }
        }
    }

    #[test]
    fn rebuild_swaps_redundant_layouts_and_accounts_bytes() {
        let (mut layouts, sizes) = fixture();
        let originals = layouts.clone();
        let (lost, read, written) = expected_totals(&layouts, &sizes);
        let path = tmp_store("happy");
        let store = PipelineStore::open(&path).expect("open");
        let out = rebuild_onto_spare(&store, &mut layouts, &sizes, DEAD, SPARE).expect("rebuild");
        assert_eq!(out.files, N_RED);
        assert_eq!(out.batches, N_RED as u32);
        assert_eq!(out.bytes_lost, lost);
        assert_eq!(out.bytes_read, read);
        assert_eq!(out.bytes_written, written);
        assert!(out.bytes_read > out.bytes_written, "EC files read k-fold");
        assert_fully_swapped(&layouts, &originals);
        assert!(store.journal().expect("journal").is_empty(), "journal cleared");

        // Idempotent: nothing references the dead server any more.
        let again = rebuild_onto_spare(&store, &mut layouts, &sizes, DEAD, SPARE).expect("again");
        assert_eq!(again, RebuildOutcome::default());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_sizes_takes_the_max_end_per_file() {
        let t = Trace::from_records(vec![
            TraceRecord {
                pid: 1,
                rank: Rank(0),
                file: FileId(3),
                op: IoOp::Write,
                offset: 0,
                len: 4096,
                ts: SimTime::ZERO,
                phase: 0,
            },
            TraceRecord {
                pid: 1,
                rank: Rank(0),
                file: FileId(1),
                op: IoOp::Read,
                offset: 8192,
                len: 4096,
                ts: SimTime::ZERO,
                phase: 0,
            },
            TraceRecord {
                pid: 1,
                rank: Rank(1),
                file: FileId(3),
                op: IoOp::Write,
                offset: 65536,
                len: 100,
                ts: SimTime::ZERO,
                phase: 0,
            },
        ]);
        assert_eq!(file_sizes(&t), vec![(FileId(1), 12288), (FileId(3), 65636)]);
    }

    /// The acceptance matrix: kill the rebuild at *every* commit
    /// boundary, resume it from the pre-rebuild layouts (what a restarted
    /// node loads from its plan), and check that the resumed run swaps
    /// everything, clears the journal, and never re-copies a committed
    /// batch.
    #[test]
    fn kill_matrix_over_rebuild_recovers_consistently() {
        let (fixture_layouts, sizes) = fixture();
        let (lost, _, written) = expected_totals(&fixture_layouts, &sizes);

        // Recording run: measure the matrix width.
        let path = tmp_store("matrix-record");
        let boundaries = {
            let store = PipelineStore::open(&path).expect("open");
            let mut layouts = fixture_layouts.clone();
            rebuild_onto_spare(&store, &mut layouts, &sizes, DEAD, SPARE).expect("record");
            store.kill_switch().boundaries()
        };
        let _ = std::fs::remove_file(&path);
        assert!(boundaries > 30, "expected a wide matrix, got {boundaries} boundaries");

        for k in 0..boundaries {
            let path = tmp_store(&format!("matrix-{k}"));
            {
                let store = PipelineStore::open(&path).expect("open");
                store.kill_switch().arm(k);
                let mut layouts = fixture_layouts.clone();
                match rebuild_onto_spare(&store, &mut layouts, &sizes, DEAD, SPARE) {
                    Err(PersistError::Killed(_)) => {}
                    other => panic!("boundary {k}: expected Killed, got {other:?}"),
                }
            }
            // "Restart": reopen, note which batches committed before the
            // crash, resume from the pre-rebuild layouts.
            let store = PipelineStore::open(&path).expect("reopen");
            let survived: u64 = store
                .journal()
                .expect("journal")
                .iter()
                .filter(|b| b.committed)
                .flat_map(|b| b.entries.iter().map(|e| e.length))
                .sum();
            let mut layouts = fixture_layouts.clone();
            let out =
                rebuild_onto_spare(&store, &mut layouts, &sizes, DEAD, SPARE).expect("resume");
            assert_eq!(out.files, N_RED, "boundary {k}");
            assert_eq!(out.bytes_lost, lost, "boundary {k}: lost bytes are descriptive");
            assert_eq!(
                out.bytes_written,
                written - survived,
                "boundary {k}: committed batches must not be re-copied"
            );
            assert_fully_swapped(&layouts, &fixture_layouts);
            assert!(store.journal().expect("journal").is_empty(), "boundary {k}");

            // Second resume is a no-op on the swapped layouts.
            let again =
                rebuild_onto_spare(&store, &mut layouts, &sizes, DEAD, SPARE).expect("again");
            assert_eq!(again, RebuildOutcome::default(), "boundary {k}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    #[should_panic(expected = "already holds a segment")]
    fn spare_inside_an_affected_layout_is_rejected() {
        let six: Vec<ServerId> = (0..6).map(ServerId).collect();
        let mut layouts = vec![(
            FileId(0),
            LayoutSpec::fixed(&six, STRIPE).with_placement(Placement::Replicated(2)),
        )];
        let sizes = vec![(FileId(0), 4 * STRIPE)];
        let path = tmp_store("bad-spare");
        let store = PipelineStore::open(&path).expect("open");
        // Spare 2 already holds a segment of the layout.
        let _ = rebuild_onto_spare(&store, &mut layouts, &sizes, DEAD, ServerId(2));
    }
}
