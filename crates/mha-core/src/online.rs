//! Online incremental re-planning over windowed traces.
//!
//! The offline MHA flow plans once from a full profiled trace. The
//! online loop instead consumes the trace as a stream of windows
//! ([`iotrace::WindowedSource`]) and keeps a [`OnlinePlanner`] that
//! decides, per window:
//!
//! 1. **Quiet or drifted?** The window's summary signature (mean
//!    request size, size CV, peak concurrency) is compared against the
//!    previous window's; relative movement below
//!    [`OnlineConfig::drift_threshold`] on every component means the
//!    current plan still fits and the window costs nothing but the
//!    comparison.
//! 2. **Incremental regroup.** A drifted window re-runs Algorithm 1
//!    *seeded from the previous window's centroids*
//!    ([`crate::grouping::group_requests_seeded`]): converged seeds
//!    make the k-means exit after one assignment pass, so the regroup
//!    cost tracks how far the workload actually moved.
//! 3. **Selective RSSD.** Each new group is matched to the nearest
//!    cached group of the previous plan (normalized Eq. 1 distance).
//!    Groups whose centroid moved less than
//!    [`OnlineConfig::center_tolerance`] and whose byte load changed by
//!    less than [`OnlineConfig::load_tolerance`] reuse the cached
//!    stripe pair; only genuinely moved groups pay the exhaustive
//!    `<h, s>` search.
//!
//! The emitted [`Plan`] is MHA-shaped (regions, DRT, RST) but built
//! single-pass: the offline planner's second repack-to-stripe pass
//! trades plan latency for extent-pitch alignment, which is the wrong
//! trade while requests are waiting. Region files advance
//! generationally (each replan allocates fresh region file ids above
//! all previous ones), so a new plan's DRT entries can be handed
//! straight to [`crate::dynamic::LazyMigrator::add_pending`]: extents
//! that were already published carry forward, superseded unmigrated
//! redirects get cancelled, and the copies happen lazily on first
//! access.

use crate::cost::views_of;
use crate::grouping::{group_requests_seeded, GroupIndex};
use crate::pattern::{FeatureSpace, ReqFeature};
use crate::region::build_regions_aligned;
use crate::rssd::{rssd, StripePair};
use crate::schemes::{Plan, PlanResolver, PlannerContext, Scheme};
use iotrace::{Trace, TraceStats, WindowStats};

/// Thresholds steering the online loop.
///
/// Construct with [`OnlineConfig::builder`]; the defaults
/// ([`OnlineConfig::default`]) match the dynamic optimizer's. Fields
/// are validated at [`OnlineConfigBuilder::build`] so a planner never
/// sees a NaN threshold or a zero-byte coverage block.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Relative movement of any signature component (mean request,
    /// size CV, peak concurrency) past which a window is *drifted* and
    /// triggers a replan. Matches the dynamic optimizer's default.
    drift_threshold: f64,
    /// Normalized Eq. 1 distance below which a group's centroid is
    /// considered unmoved and its cached stripe pair is reused.
    center_tolerance: f64,
    /// Relative byte-load change below which pair reuse is allowed.
    load_tolerance: f64,
    /// Unit of lazy migration, bytes: every migrated extent is rounded
    /// outward to this block in the *original* file, so a plan built
    /// from one window's sample redirects the whole spatial
    /// neighborhood it profiled — future requests landing near (not
    /// exactly on) profiled offsets still resolve to the region file.
    /// `1` migrates exactly the profiled byte ranges (the offline
    /// planner's behavior, appropriate when the replayed trace is the
    /// profiled trace).
    coverage_block: u64,
    /// Minimum profiled accesses a coverage block needs before it is
    /// migrated (only meaningful with `coverage_block > 1`). Zipf-tail
    /// blocks seen once in a window rarely earn their copy back —
    /// leaving them in place keeps lazy-migration traffic proportional
    /// to the *hot* set. `1` migrates every profiled block.
    coverage_min_hits: u32,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            drift_threshold: 0.25,
            center_tolerance: 0.05,
            load_tolerance: 0.5,
            coverage_block: 1,
            coverage_min_hits: 1,
        }
    }
}

impl OnlineConfig {
    /// A builder seeded with the validated defaults.
    pub fn builder() -> OnlineConfigBuilder {
        OnlineConfigBuilder { cfg: OnlineConfig::default() }
    }

    /// Drift-trigger threshold (relative signature movement).
    pub fn drift_threshold(&self) -> f64 {
        self.drift_threshold
    }

    /// Centroid-distance tolerance for stripe-pair reuse.
    pub fn center_tolerance(&self) -> f64 {
        self.center_tolerance
    }

    /// Byte-load change tolerance for stripe-pair reuse.
    pub fn load_tolerance(&self) -> f64 {
        self.load_tolerance
    }

    /// Lazy-migration coverage block, bytes.
    pub fn coverage_block(&self) -> u64 {
        self.coverage_block
    }

    /// Minimum profiled hits before a coverage block migrates.
    pub fn coverage_min_hits(&self) -> u32 {
        self.coverage_min_hits
    }
}

/// Rejected [`OnlineConfigBuilder`] input, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineConfigError(String);

impl std::fmt::Display for OnlineConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid online config: {}", self.0)
    }
}

impl std::error::Error for OnlineConfigError {}

/// Builder for [`OnlineConfig`]. Every setter overwrites a default;
/// [`build`](OnlineConfigBuilder::build) validates the combination.
#[derive(Debug, Clone)]
pub struct OnlineConfigBuilder {
    cfg: OnlineConfig,
}

impl OnlineConfigBuilder {
    /// Relative signature movement past which a window replans.
    #[must_use]
    pub fn drift_threshold(mut self, v: f64) -> Self {
        self.cfg.drift_threshold = v;
        self
    }

    /// Normalized centroid distance below which pairs are reused.
    #[must_use]
    pub fn center_tolerance(mut self, v: f64) -> Self {
        self.cfg.center_tolerance = v;
        self
    }

    /// Relative byte-load change below which pairs are reused.
    #[must_use]
    pub fn load_tolerance(mut self, v: f64) -> Self {
        self.cfg.load_tolerance = v;
        self
    }

    /// Lazy-migration coverage block, bytes (`1` = exact extents).
    #[must_use]
    pub fn coverage_block(mut self, v: u64) -> Self {
        self.cfg.coverage_block = v;
        self
    }

    /// Minimum profiled hits before a coverage block migrates.
    #[must_use]
    pub fn coverage_min_hits(mut self, v: u32) -> Self {
        self.cfg.coverage_min_hits = v;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<OnlineConfig, OnlineConfigError> {
        let c = self.cfg;
        if !(c.drift_threshold.is_finite() && c.drift_threshold > 0.0) {
            return Err(OnlineConfigError(format!(
                "drift_threshold must be finite and positive, got {}",
                c.drift_threshold
            )));
        }
        if !(c.center_tolerance.is_finite() && c.center_tolerance >= 0.0) {
            return Err(OnlineConfigError(format!(
                "center_tolerance must be finite and non-negative, got {}",
                c.center_tolerance
            )));
        }
        if !(c.load_tolerance.is_finite() && c.load_tolerance >= 0.0) {
            return Err(OnlineConfigError(format!(
                "load_tolerance must be finite and non-negative, got {}",
                c.load_tolerance
            )));
        }
        if c.coverage_block == 0 {
            return Err(OnlineConfigError(
                "coverage_block must be at least 1 byte (1 = exact extents)".into(),
            ));
        }
        if c.coverage_min_hits == 0 {
            return Err(OnlineConfigError(
                "coverage_min_hits must be at least 1 (1 = migrate every profiled block)".into(),
            ));
        }
        Ok(c)
    }
}

/// A window's drift signature: the three summary statistics the replan
/// trigger compares. Cheap to build from either the incremental
/// [`WindowStats`] or a full [`TraceStats`] rescan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSig {
    /// Mean request size, bytes.
    pub mean_request: f64,
    /// Request-size coefficient of variation.
    pub size_cv: f64,
    /// Peak per-(file, phase) concurrency.
    pub max_concurrency: u32,
    /// Mean request start offset, bytes — the spatial component: a
    /// hot-spot move drifts this even when the size mix holds still.
    pub mean_offset: f64,
    /// Largest request start offset, bytes. Normalizes spatial drift:
    /// the mean's movement is compared against the addressed span, so
    /// Zipf tail sampling noise (large relative to the mean, small
    /// relative to the span) stays quiet while a genuine hot-spot move
    /// (a span-scale jump) drifts.
    pub max_offset: u64,
}

impl From<&WindowStats> for WindowSig {
    fn from(s: &WindowStats) -> Self {
        WindowSig {
            mean_request: s.mean_request(),
            size_cv: s.size_cv(),
            max_concurrency: s.max_concurrency,
            mean_offset: s.mean_offset(),
            max_offset: s.max_offset,
        }
    }
}

impl From<&TraceStats> for WindowSig {
    fn from(s: &TraceStats) -> Self {
        WindowSig {
            mean_request: s.mean_request,
            size_cv: s.size_cv,
            max_concurrency: s.max_concurrency,
            mean_offset: s.mean_offset,
            max_offset: s.max_offset,
        }
    }
}

impl WindowSig {
    /// Has this signature moved past `threshold` relative to `prev` on
    /// any component? (The same test the dynamic optimizer applies to
    /// full epoch statistics.)
    fn drifted_from(&self, prev: &WindowSig, threshold: f64) -> bool {
        let rel = |a: f64, b: f64| {
            if a == 0.0 && b == 0.0 {
                0.0
            } else {
                (a - b).abs() / a.abs().max(b.abs())
            }
        };
        rel(self.mean_request, prev.mean_request) > threshold
            || rel(self.size_cv, prev.size_cv) > threshold
            || rel(
                f64::from(self.max_concurrency),
                f64::from(prev.max_concurrency),
            ) > threshold
            || {
                let span = (self.max_offset.max(prev.max_offset) as f64).max(1.0);
                (self.mean_offset - prev.mean_offset).abs() / span > threshold
            }
    }
}

/// Counters the experiments report.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplanStats {
    /// Windows observed.
    pub windows: usize,
    /// Windows dismissed as quiet (no replan).
    pub quiet_windows: usize,
    /// Replans performed.
    pub replans: usize,
    /// RSSD searches actually run across all replans.
    pub searches_run: usize,
    /// RSSD searches skipped by centroid/load pair reuse.
    pub searches_reused: usize,
}

/// What [`OnlinePlanner::observe`] decided for a window.
pub enum Replan {
    /// The window's signature is within the drift threshold of the
    /// previous one — keep the installed plan.
    Quiet,
    /// A fresh plan. `reused` of its `reused + searched` region stripe
    /// pairs were carried over from the previous plan's cache.
    Plan {
        /// The new MHA-shaped plan (hand its DRT entries to the lazy
        /// migrator, install its layouts and RST).
        plan: Plan,
        /// Stripe pairs reused from the cache.
        reused: usize,
        /// Stripe pairs found by a fresh RSSD search.
        searched: usize,
    },
}

/// Cached per-group outcome of the previous replan.
#[derive(Debug, Clone, Copy)]
struct GroupCache {
    center: ReqFeature,
    load: f64,
    pair: Option<StripePair>,
}

/// The online re-planner: windowed drift detection, centroid-seeded
/// regrouping, and per-group RSSD reuse. See the module docs for the
/// loop structure and DESIGN.md §15 for the invariants.
pub struct OnlinePlanner {
    ctx: PlannerContext,
    cfg: OnlineConfig,
    sig: Option<WindowSig>,
    centers: Vec<ReqFeature>,
    cache: Vec<GroupCache>,
    next_region_file: u32,
    /// Running counters (windows, replans, search reuse).
    pub stats: ReplanStats,
}

impl OnlinePlanner {
    /// A fresh planner; the first observed window always plans.
    pub fn new(ctx: PlannerContext, cfg: OnlineConfig) -> Self {
        let next_region_file = ctx.region_file_base;
        OnlinePlanner {
            ctx,
            cfg,
            sig: None,
            centers: Vec::new(),
            cache: Vec::new(),
            next_region_file,
            stats: ReplanStats::default(),
        }
    }

    /// The planner context in use (the region file counter inside it is
    /// *not* advanced; [`OnlinePlanner`] tracks generations itself).
    pub fn context(&self) -> &PlannerContext {
        &self.ctx
    }

    /// First region file id the *next* replan will allocate.
    pub fn next_region_file(&self) -> u32 {
        self.next_region_file
    }

    /// Observe one window (its records as `trace`, its summary as
    /// `sig`) and decide whether to replan.
    pub fn observe(&mut self, trace: &Trace, sig: WindowSig) -> Replan {
        self.stats.windows += 1;
        if let Some(prev) = &self.sig {
            if !sig.drifted_from(prev, self.cfg.drift_threshold) {
                self.stats.quiet_windows += 1;
                self.sig = Some(sig);
                return Replan::Quiet;
            }
        }
        self.sig = Some(sig);
        self.stats.replans += 1;
        self.replan(trace)
    }

    /// Build a plan for `trace`, reusing the previous generation's
    /// stripe pairs for groups that did not move.
    fn replan(&mut self, trace: &Trace) -> Replan {
        let params = self.ctx.effective_params();
        let views = views_of(trace);
        let feats: Vec<ReqFeature> = views.iter().map(ReqFeature::of).collect();
        let grouping = group_requests_seeded(&feats, &self.ctx.grouping, &self.centers);
        let base_align = self.ctx.region_align.unwrap_or(self.ctx.rssd.step.max(4096));
        let exact = build_regions_aligned(trace, &grouping, self.next_region_file, base_align);
        // With a coverage block, the *migrated* extents are the profiled
        // extents rounded outward to block granularity in the original
        // file — one window's sample then redirects its whole spatial
        // neighborhood. The RSSD search below still scores the exact
        // per-request views: stripe sizing must follow the real request
        // mix, not the widened copy units.
        let build = if self.cfg.coverage_block > 1 {
            let b = self.cfg.coverage_block;
            let mut hits: std::collections::HashMap<(u32, u64), u32> = std::collections::HashMap::new();
            if self.cfg.coverage_min_hits > 1 {
                for r in trace.records() {
                    *hits.entry((r.file.0, r.offset / b)).or_insert(0) += 1;
                }
            }
            // Cold-block records keep `len: 0`: the region builder
            // skips them, so their bytes stay in the original file
            // (served at the default layout, but never paying a copy).
            let widened: Vec<iotrace::TraceRecord> = trace
                .records()
                .iter()
                .map(|r| {
                    let hot = self.cfg.coverage_min_hits <= 1
                        || hits.get(&(r.file.0, r.offset / b)).copied().unwrap_or(0)
                            >= self.cfg.coverage_min_hits;
                    let start = r.offset / b * b;
                    let end = (r.offset + r.len).div_ceil(b) * b;
                    let len = if hot { end - start } else { 0 };
                    iotrace::TraceRecord { offset: start, len, ..*r }
                })
                .collect();
            build_regions_aligned(
                &Trace::from_records(widened),
                &grouping,
                self.next_region_file,
                base_align,
            )
        } else {
            exact.clone()
        };
        let index = GroupIndex::new(&grouping);
        let space = FeatureSpace::fit(&feats);

        // Per-group byte load: the second reuse gate. A group whose
        // centroid held still but whose traffic doubled deserves a
        // fresh search — the concurrency-aware cost model is load-
        // sensitive.
        let load_of = |g: usize| -> f64 {
            index.members(g).iter().map(|&i| views[i as usize].len as f64).sum()
        };

        let mut reused = 0usize;
        let mut searched = 0usize;
        let mut new_cache: Vec<GroupCache> = Vec::with_capacity(build.regions.len());
        let mut layouts = Vec::new();
        let mut rst = crate::region::Rst::new();
        for (region, region_views) in build.regions.iter().zip(&exact.region_views) {
            let g = region.group;
            let center = grouping.centers[g];
            let load = load_of(g);
            let cached = self
                .cache
                .iter()
                .min_by(|a, b| {
                    space
                        .distance_sq(&a.center, &center)
                        .total_cmp(&space.distance_sq(&b.center, &center))
                })
                .copied();
            let pair = match cached {
                Some(c)
                    if space.distance(&c.center, &center) <= self.cfg.center_tolerance
                        && rel_change(c.load, load) <= self.cfg.load_tolerance =>
                {
                    reused += 1;
                    c.pair
                }
                _ => {
                    searched += 1;
                    rssd(region_views, &params, &self.ctx.rssd).map(|r| r.pair)
                }
            };
            if let Some(p) = pair {
                rst.set(region.file, p);
                if let Some(layout) = self.ctx.layout_for(p.h, p.s) {
                    layouts.push((region.file, layout));
                }
            }
            new_cache.push(GroupCache { center, load, pair });
        }
        self.stats.searches_run += searched;
        self.stats.searches_reused += reused;
        self.centers = grouping.centers;
        self.cache = new_cache;
        self.next_region_file += build.regions.len() as u32;

        Replan::Plan {
            plan: Plan {
                scheme: Scheme::Mha,
                layouts,
                resolver: PlanResolver::Drt(build.drt),
                rst,
                regions: build.regions,
            },
            reused,
            searched,
        }
    }
}

/// Relative change between two magnitudes (0 when both are zero).
fn rel_change(a: f64, b: f64) -> f64 {
    if a == 0.0 && b == 0.0 {
        0.0
    } else {
        (a - b).abs() / a.abs().max(b.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Drt;
    use iotrace::gen::skewed::{self, SkewedConfig};
    use iotrace::{TraceBatches, WindowConfig, WindowedSource};
    use pfs_sim::ClusterConfig;
    use storage_model::IoOp;

    fn ctx() -> PlannerContext {
        PlannerContext::for_cluster(&ClusterConfig::paper_default())
    }

    fn skewed_trace(request_size: u64, phases: usize, seed: u64) -> Trace {
        let mut cfg = SkewedConfig::default_run(IoOp::Read);
        cfg.procs = 8;
        cfg.phases = phases;
        cfg.request_size = request_size;
        cfg.seed = seed;
        skewed::generate(&cfg)
    }

    #[test]
    fn first_window_always_plans() {
        let mut planner = OnlinePlanner::new(ctx(), OnlineConfig::default());
        let t = skewed_trace(64 << 10, 8, 1);
        let sig = WindowSig::from(&TraceStats::of(&t));
        match planner.observe(&t, sig) {
            Replan::Plan { plan, .. } => {
                assert!(!plan.regions.is_empty());
                let PlanResolver::Drt(drt) = &plan.resolver else { panic!("MHA redirects") };
                assert!(!drt.is_empty());
            }
            Replan::Quiet => panic!("a cold planner has no plan to keep"),
        }
        assert_eq!(planner.stats.replans, 1);
    }

    #[test]
    fn steady_windows_are_quiet_and_reuse_everything_on_a_forced_replan() {
        let mut planner = OnlinePlanner::new(ctx(), OnlineConfig::default());
        let windows = [skewed_trace(64 << 10, 8, 1), skewed_trace(64 << 10, 8, 2)];
        let sig0 = WindowSig::from(&TraceStats::of(&windows[0]));
        assert!(matches!(planner.observe(&windows[0], sig0), Replan::Plan { .. }));
        let sig1 = WindowSig::from(&TraceStats::of(&windows[1]));
        assert!(
            matches!(planner.observe(&windows[1], sig1), Replan::Quiet),
            "same workload shape, different sample: quiet"
        );
        assert_eq!(planner.stats.quiet_windows, 1);
        // Force a replan of an unchanged workload by observing a window
        // with a cooked signature: every group should reuse its pair.
        let forced = WindowSig {
            mean_request: 1.0,
            size_cv: 0.0,
            max_concurrency: 1,
            mean_offset: 0.0,
            max_offset: 0,
        };
        planner.sig = Some(forced);
        match planner.observe(&windows[1], sig1) {
            Replan::Plan { reused, searched, .. } => {
                assert!(searched == 0, "unmoved groups must not re-search ({searched} did)");
                assert!(reused > 0);
            }
            Replan::Quiet => panic!("cooked signature must drift"),
        }
    }

    #[test]
    fn phase_shift_triggers_a_replan_with_fresh_searches() {
        let mut planner = OnlinePlanner::new(ctx(), OnlineConfig::default());
        let before = skewed_trace(16 << 10, 8, 1);
        let after = skewed_trace(512 << 10, 8, 1);
        let sig_b = WindowSig::from(&TraceStats::of(&before));
        assert!(matches!(planner.observe(&before, sig_b), Replan::Plan { .. }));
        let sig_a = WindowSig::from(&TraceStats::of(&after));
        match planner.observe(&after, sig_a) {
            Replan::Plan { searched, .. } => {
                assert!(searched > 0, "a 32x request-size shift must re-search")
            }
            Replan::Quiet => panic!("32x request-size shift must drift"),
        }
        assert_eq!(planner.stats.replans, 2);
    }

    #[test]
    fn hot_spot_move_drifts_even_with_an_unchanged_size_mix() {
        use iotrace::TraceRecord;
        let mut planner = OnlinePlanner::new(ctx(), OnlineConfig::default());
        let before = skewed_trace(64 << 10, 8, 1);
        let span = before.records().iter().map(|r| r.offset).max().unwrap() + (64 << 10);
        // Same records, hot spot rotated half the span away: sizes and
        // concurrency are untouched, only the spatial signature moves.
        let after = Trace::from_records(
            before
                .records()
                .iter()
                .map(|r| TraceRecord {
                    offset: ((r.offset + span / 2) % span).min(span - r.len),
                    ..*r
                })
                .collect(),
        );
        let sig_b = WindowSig::from(&TraceStats::of(&before));
        assert!(matches!(planner.observe(&before, sig_b), Replan::Plan { .. }));
        let sig_a = WindowSig::from(&TraceStats::of(&after));
        assert!(
            matches!(planner.observe(&after, sig_a), Replan::Plan { .. }),
            "a span-scale offset move must replan"
        );
    }

    #[test]
    fn coverage_block_widens_migrated_extents_without_distorting_regions() {
        let exact = OnlineConfig::default();
        let block = OnlineConfig::builder().coverage_block(1 << 20).build().unwrap();
        let t = skewed_trace(64 << 10, 8, 5);
        let sig = WindowSig::from(&TraceStats::of(&t));
        let plan_of = |cfg: OnlineConfig| {
            let mut p = OnlinePlanner::new(ctx(), cfg);
            let Replan::Plan { plan, .. } = p.observe(&t, sig) else { panic!("cold plan") };
            plan
        };
        let (pe, pb) = (plan_of(exact), plan_of(block));
        let PlanResolver::Drt(de) = &pe.resolver else { panic!() };
        let PlanResolver::Drt(db) = &pb.resolver else { panic!() };
        // Every exact byte stays covered, block alignment holds, and
        // the widened table never redirects *less*.
        for e in de.entries() {
            let phys = db.translate(e.o_file, e.o_offset, e.length);
            assert!(
                phys.iter().all(|p| p.file != e.o_file),
                "widened plan must still redirect {e:?}"
            );
        }
        for e in db.entries() {
            assert_eq!(e.o_offset % (1 << 20), 0, "block-aligned start: {e:?}");
            assert_eq!(e.length % (1 << 20), 0, "block-aligned length: {e:?}");
        }
        // Stripe decisions follow the real request mix, not the widened
        // copies: both plans chose from identical per-request views.
        for (re, rb) in pe.regions.iter().zip(&pb.regions) {
            assert_eq!(pe.rst.get(re.file), pb.rst.get(rb.file));
        }
    }

    #[test]
    fn generations_never_reuse_region_files() {
        let mut planner = OnlinePlanner::new(ctx(), OnlineConfig::default());
        let mut seen = std::collections::HashSet::new();
        for (i, size) in [16 << 10, 512 << 10, 16 << 10].iter().enumerate() {
            let t = skewed_trace(*size, 8, i as u64 + 1);
            let sig = WindowSig::from(&TraceStats::of(&t));
            if let Replan::Plan { plan, .. } = planner.observe(&t, sig) {
                for r in &plan.regions {
                    assert!(seen.insert(r.file), "region file {:?} reused across plans", r.file);
                }
            }
        }
        assert!(planner.stats.replans >= 2);
    }

    #[test]
    fn builder_defaults_round_trip_and_bad_inputs_are_rejected() {
        let built = OnlineConfig::builder().build().unwrap();
        let dflt = OnlineConfig::default();
        assert_eq!(built.drift_threshold(), dflt.drift_threshold());
        assert_eq!(built.center_tolerance(), dflt.center_tolerance());
        assert_eq!(built.load_tolerance(), dflt.load_tolerance());
        assert_eq!(built.coverage_block(), dflt.coverage_block());
        assert_eq!(built.coverage_min_hits(), dflt.coverage_min_hits());

        let custom = OnlineConfig::builder()
            .drift_threshold(0.1)
            .center_tolerance(0.2)
            .load_tolerance(0.3)
            .coverage_block(16 << 20)
            .coverage_min_hits(2)
            .build()
            .unwrap();
        assert_eq!(custom.drift_threshold(), 0.1);
        assert_eq!(custom.coverage_block(), 16 << 20);
        assert_eq!(custom.coverage_min_hits(), 2);

        for bad in [
            OnlineConfig::builder().drift_threshold(0.0),
            OnlineConfig::builder().drift_threshold(f64::NAN),
            OnlineConfig::builder().drift_threshold(f64::INFINITY),
            OnlineConfig::builder().center_tolerance(-0.1),
            OnlineConfig::builder().center_tolerance(f64::NAN),
            OnlineConfig::builder().load_tolerance(-1.0),
            OnlineConfig::builder().coverage_block(0),
            OnlineConfig::builder().coverage_min_hits(0),
        ] {
            let err = bad.build().expect_err("invalid config must not build");
            assert!(err.to_string().starts_with("invalid online config: "), "{err}");
        }
    }

    #[test]
    fn window_sig_matches_between_incremental_and_rescan_paths() {
        let t = skewed_trace(64 << 10, 8, 7);
        let mut src = TraceBatches::new(&t);
        let mut windows =
            WindowedSource::new(&mut src, WindowConfig { phases: 8, max_records: 0 });
        let w = windows.next_window().expect("one window");
        let inc = WindowSig::from(&w.stats);
        let full = WindowSig::from(&TraceStats::of(&w.into_trace()));
        assert!((inc.mean_request - full.mean_request).abs() < 1e-6);
        assert!((inc.size_cv - full.size_cv).abs() < 1e-9);
        assert_eq!(inc.max_concurrency, full.max_concurrency);
    }

    #[test]
    fn online_plan_entries_feed_the_lazy_migrator_shape() {
        // The plan's DRT entries must be disjoint per original file —
        // the contract add_pending's cancellation logic assumes.
        let mut planner = OnlinePlanner::new(ctx(), OnlineConfig::default());
        let t = skewed_trace(64 << 10, 8, 3);
        let sig = WindowSig::from(&TraceStats::of(&t));
        let Replan::Plan { plan, .. } = planner.observe(&t, sig) else { panic!() };
        let PlanResolver::Drt(drt) = &plan.resolver else { panic!() };
        let mut probe = Drt::new();
        for e in drt.entries() {
            assert!(probe.insert(e), "plan entries must be disjoint: {e:?}");
        }
    }
}
