//! The four layout schemes the paper evaluates, behind one planner trait.
//!
//! | Scheme | Pattern-aware | Server-aware | Reordering |
//! |--------|---------------|--------------|------------|
//! | DEF    | no            | no           | no         |
//! | AAL    | yes           | no           | no         |
//! | HARL   | yes (per fixed region) | yes | no         |
//! | MHA    | yes (per request group) | yes | **yes**   |
//!
//! * **DEF** — the file system default: fixed 64 KB stripes over all
//!   servers; the plan is empty.
//! * **AAL** (application-aware layout, [10]) — picks one stripe size per
//!   file from the traced access pattern but assigns it uniformly to
//!   every server, evaluating costs under a *homogeneous* model (all
//!   servers treated as HServers) — server heterogeneity is ignored.
//! * **HARL** ([8], the authors' prior work) — divides each file into
//!   fixed offset-contiguous regions and runs the stripe search per
//!   region against the *inherent* request order; no data migration, no
//!   concurrency term, and search bounds from the average request size.
//! * **MHA** — the paper's contribution: group requests by pattern
//!   (Algorithm 1), migrate each group into its own region, run RSSD
//!   (Algorithm 2) per region with the concurrency-aware cost model, and
//!   redirect at runtime through the DRT.

use crate::cost::{views_of, CostParams, ReqView};
use crate::grouping::{group_requests, GroupingConfig};
use crate::pattern::ReqFeature;
use crate::redirect::DrtResolver;
use crate::region::{Drt, DrtEntry, RegionInfo, Rst};
use crate::rssd::{region_cost, rssd, RssdConfig, StripePair};
use iotrace::{FileId, Trace};
use pfs_sim::{
    Cluster, ClusterConfig, CoreSel, FaultPlan, IdentityResolver, LayoutSpec, Placement,
    ReplayError, ReplayInput, ReplayReport, ReplaySession, Resolver, ServerHealth, ServerId,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use simrt::{SchedPolicy, SimDuration};

/// The schemes compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Default fixed striping.
    Def,
    /// Application-aware layout (heterogeneity-blind).
    Aal,
    /// Heterogeneity-aware region-level layout (no reordering).
    Harl,
    /// Migratory heterogeneity-aware layout (this paper).
    Mha,
}

impl Scheme {
    /// All schemes in the paper's presentation order.
    pub fn all() -> [Scheme; 4] {
        [Scheme::Def, Scheme::Aal, Scheme::Harl, Scheme::Mha]
    }

    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Def => "DEF",
            Scheme::Aal => "AAL",
            Scheme::Harl => "HARL",
            Scheme::Mha => "MHA",
        }
    }

    /// The planner implementing this scheme.
    pub fn planner(self) -> Box<dyn LayoutPlanner> {
        match self {
            Scheme::Def => Box::new(DefPlanner),
            Scheme::Aal => Box::new(AalPlanner),
            Scheme::Harl => Box::new(HarlPlanner),
            Scheme::Mha => Box::new(MhaPlanner),
        }
    }
}

/// Everything a planner needs besides the trace.
#[derive(Debug, Clone)]
pub struct PlannerContext {
    /// Calibrated cost model matching the target cluster's shape.
    pub params: CostParams,
    /// RSSD search configuration.
    pub rssd: RssdConfig,
    /// Request grouping configuration (MHA).
    pub grouping: GroupingConfig,
    /// Fixed region count per file for HARL.
    pub harl_regions: u32,
    /// First file id usable for region files (above all original ids).
    pub region_file_base: u32,
    /// Per-request DRT lookup cost charged by redirecting resolvers.
    pub lookup_cost: SimDuration,
    /// Packing alignment for migrated extents (defaults to the RSSD step
    /// when `None`). Larger alignments trade padding for stripe-grid
    /// friendliness of the extent pitch.
    pub region_align: Option<u64>,
    /// Selective application (§I: "not necessary to apply to the entire
    /// file system, but rather to critical data sets and data sections"):
    /// a group is only migrated when its model-predicted cost improvement
    /// over the DEF layout exceeds this fraction. `0.0` migrates every
    /// group (the default, matching the paper's evaluation).
    pub selective_min_gain: f64,
    /// Per-server health, as reported by a replay under faults
    /// ([`FaultPlan::health_view`] or [`pfs_sim::ServerIoStat`]). Empty —
    /// the default — means a pristine cluster, and planning is exactly
    /// what it was before health existed. Non-empty health makes the
    /// planners degrade gracefully: lost/excluded servers drop out of new
    /// layouts and the cost model re-weights by the surviving servers'
    /// slowdowns (failover restriping).
    pub health: Vec<ServerHealth>,
    /// Slowdown factor at which a degraded server is *excluded* from new
    /// layouts entirely rather than merely down-weighted. The default 3.0
    /// excludes permanent-loss servers (infinite), outage-penalized
    /// servers (4.0) and worn-SSD-class stragglers (≥ 3.0).
    pub exclude_slowdown: f64,
}

impl PlannerContext {
    /// Context calibrated for `cfg` (device probing happens here, once).
    pub fn for_cluster(cfg: &ClusterConfig) -> Self {
        PlannerContext {
            params: CostParams::calibrate(cfg.hservers, cfg.sservers, &cfg.hdd, &cfg.ssd, &cfg.link),
            rssd: RssdConfig::default(),
            grouping: GroupingConfig::default(),
            harl_regions: 8,
            region_file_base: 1 << 20,
            lookup_cost: SimDuration::from_micros(5),
            region_align: None,
            selective_min_gain: 0.0,
            health: Vec::new(),
            exclude_slowdown: 3.0,
        }
    }

    /// Attach per-server health (e.g. `plan.health_view(servers)`), for
    /// planning around a degraded cluster. Returns `self` for chaining.
    #[must_use]
    pub fn with_health(mut self, health: Vec<ServerHealth>) -> Self {
        self.health = health;
        self
    }

    /// Is server `i` usable for new layouts under the current health?
    /// (Not lost, and not slowed past [`Self::exclude_slowdown`].)
    pub fn server_usable(&self, i: usize) -> bool {
        self.health
            .get(i)
            .is_none_or(|h| !h.down && h.speed_factor < self.exclude_slowdown)
    }

    /// The cost parameters the planners should optimize against: with no
    /// health attached this is exactly [`Self::params`] (bit-identical
    /// plans); with health, the cluster shape shrinks to the usable
    /// servers and each class's service terms are inflated by the mean
    /// slowdown of its survivors.
    pub fn effective_params(&self) -> CostParams {
        if self.health.is_empty() {
            return self.params.clone();
        }
        let factors = |range: std::ops::Range<usize>| -> (usize, f64) {
            let alive: Vec<f64> = range
                .filter(|&i| self.server_usable(i))
                .map(|i| self.health.get(i).map_or(1.0, |h| h.speed_factor))
                .collect();
            let mean = if alive.is_empty() {
                1.0
            } else {
                alive.iter().sum::<f64>() / alive.len() as f64
            };
            (alive.len(), mean)
        };
        let (m, fh) = factors(0..self.params.m);
        let (n, fs) = factors(self.params.m..self.params.m + self.params.n);
        CostParams {
            m,
            n,
            alpha_h: self.params.alpha_h * fh,
            beta_h: self.params.beta_h * fh,
            alpha_sr: self.params.alpha_sr * fs,
            beta_sr: self.params.beta_sr * fs,
            alpha_sw: self.params.alpha_sw * fs,
            beta_sw: self.params.beta_sw * fs,
            ..self.params.clone()
        }
    }

    /// Build the layout an `<h, s>` pair denotes over the *usable*
    /// servers. With no health attached this is exactly
    /// `self.params.layout_for(h, s)`; with health, lost and excluded
    /// servers are left out, so new data never lands on them.
    pub fn layout_for(&self, h: u64, s: u64) -> Option<LayoutSpec> {
        if self.health.is_empty() {
            return self.params.layout_for(h, s);
        }
        let hs: Vec<ServerId> = (0..self.params.m)
            .filter(|&i| self.server_usable(i))
            .map(ServerId)
            .collect();
        let ss: Vec<ServerId> = (self.params.m..self.params.m + self.params.n)
            .filter(|&i| self.server_usable(i))
            .map(ServerId)
            .collect();
        if (h == 0 || hs.is_empty()) && (s == 0 || ss.is_empty()) {
            return None;
        }
        Some(LayoutSpec::hybrid(&hs, h, &ss, s))
    }

    /// Adapt the RSSD step to a workload's largest request: the 4 KiB
    /// default is kept for small-request workloads, while multi-megabyte
    /// workloads (BTIO-class) coarsen the step so the candidate grid
    /// stays tractable — the paper notes the step "can be configured by
    /// the user". Returns `self` for chaining.
    pub fn with_step_for(mut self, trace: &Trace) -> Self {
        let r_max = trace.max_request_size();
        let step = (r_max / 256).div_ceil(4096).max(1) * 4096;
        self.rssd.step = step.max(4096);
        self
    }
}

/// How a plan resolves logical requests at runtime.
#[derive(Debug, Clone)]
pub enum PlanResolver {
    /// Direct access (DEF, AAL).
    Identity,
    /// DRT-based redirection (HARL's region split, MHA's migration).
    Drt(Drt),
}

/// A computed layout plan, ready to install on a cluster.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Which scheme produced this plan.
    pub scheme: Scheme,
    /// Layouts to install, per physical file.
    pub layouts: Vec<(FileId, LayoutSpec)>,
    /// Runtime resolution strategy.
    pub resolver: PlanResolver,
    /// The region stripe table (empty for DEF/AAL).
    pub rst: Rst,
    /// Regions created by the plan (empty for DEF/AAL).
    pub regions: Vec<RegionInfo>,
}

impl Plan {
    /// This plan with `placement` attached to every layout wide enough
    /// to carry it. Layouts with fewer segments than the placement needs
    /// (a replica per distinct server, `k + m` shards for EC) stay
    /// striped rather than failing the whole plan — an SServer-only
    /// region of a mostly-hybrid plan just forgoes redundancy.
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> Self {
        for (_, spec) in &mut self.layouts {
            *spec = spec.clone().try_with_placement(placement).unwrap_or_else(|_| spec.clone());
        }
        self
    }

    /// How many of the plan's layouts carry a non-striped placement.
    pub fn redundant_layouts(&self) -> usize {
        self.layouts.iter().filter(|(_, s)| !s.placement().is_striped()).count()
    }

    /// Build the runtime resolver for this plan.
    pub fn make_resolver(&self, lookup_cost: SimDuration) -> Box<dyn Resolver> {
        match &self.resolver {
            PlanResolver::Identity => Box::new(IdentityResolver),
            PlanResolver::Drt(drt) => Box::new(DrtResolver::new(drt.clone(), lookup_cost)),
        }
    }
}

/// A layout planner: turns a profiled trace into a [`Plan`].
pub trait LayoutPlanner {
    /// Scheme name.
    fn name(&self) -> &'static str;
    /// Compute the plan for `trace` under `ctx`.
    fn plan(&self, trace: &Trace, ctx: &PlannerContext) -> Plan;
}

/// Install a plan's layouts into a cluster's metadata server.
pub fn apply_plan(cluster: &mut Cluster, plan: &Plan) {
    for (file, layout) in &plan.layouts {
        cluster.mds_mut().set_layout(*file, layout.clone());
    }
}

// ---------------------------------------------------------------- DEF --

/// The file system default: nothing to plan.
pub struct DefPlanner;

impl LayoutPlanner for DefPlanner {
    fn name(&self) -> &'static str {
        "DEF"
    }

    fn plan(&self, _trace: &Trace, _ctx: &PlannerContext) -> Plan {
        Plan {
            scheme: Scheme::Def,
            layouts: Vec::new(),
            resolver: PlanResolver::Identity,
            rst: Rst::new(),
            regions: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------- AAL --

/// Application-aware layout: one traced-pattern-optimized stripe size per
/// file, uniform across all servers (server heterogeneity ignored).
pub struct AalPlanner;

impl LayoutPlanner for AalPlanner {
    fn name(&self) -> &'static str {
        "AAL"
    }

    fn plan(&self, trace: &Trace, ctx: &PlannerContext) -> Plan {
        // Heterogeneity-blind view: all M + N (usable) servers look like
        // HServers.
        let params = ctx.effective_params();
        let servers = params.m + params.n;
        let homog = CostParams {
            m: servers,
            n: 0,
            alpha_sr: params.alpha_h,
            beta_sr: params.beta_h,
            alpha_sw: params.alpha_h,
            beta_sw: params.beta_h,
            ..params.clone()
        };
        let views_all = views_of(trace);
        let mut layouts = Vec::new();
        // One scratch serves every file's candidate scan (no per-candidate
        // allocation); with an infinite cutoff `region_cost_bounded` is
        // exactly `region_cost`.
        let mut scratch = crate::rssd::CostScratch::new();
        for file in trace.files() {
            let views: Vec<ReqView> = trace
                .records()
                .iter()
                .zip(&views_all)
                .filter(|(r, _)| r.file == file)
                .map(|(_, v)| *v)
                .collect();
            if views.is_empty() {
                continue;
            }
            let step = ctx.rssd.step.max(1);
            let r_max = views.iter().map(|v| v.len).max().expect("nonempty");
            // AAL sees the full application pattern (sizes *and*
            // concurrency) — only the servers look identical to it.
            let mut best: Option<(f64, u64)> = None;
            let mut st = step;
            while st <= r_max.max(step) {
                let cost = crate::rssd::region_cost_bounded(
                    &views,
                    &homog,
                    StripePair { h: st, s: 0 },
                    f64::INFINITY,
                    &mut scratch,
                )
                .expect("an infinite cutoff is never exceeded");
                if best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, st));
                }
                if st >= r_max {
                    break;
                }
                st += step;
            }
            let (_, stripe) = best.expect("at least one candidate");
            // The homogeneous layout assigns `stripe` to every usable
            // real server.
            if let Some(layout) = ctx.layout_for(stripe, stripe) {
                layouts.push((file, layout));
            }
        }
        Plan {
            scheme: Scheme::Aal,
            layouts,
            resolver: PlanResolver::Identity,
            rst: Rst::new(),
            regions: Vec::new(),
        }
    }
}

// --------------------------------------------------------------- HARL --

/// Heterogeneity-aware region-level layout: fixed offset regions, per-
/// region stripe search on the inherent order, no migration.
pub struct HarlPlanner;

impl LayoutPlanner for HarlPlanner {
    fn name(&self) -> &'static str {
        "HARL"
    }

    fn plan(&self, trace: &Trace, ctx: &PlannerContext) -> Plan {
        let params = ctx.effective_params();
        let mut layouts = Vec::new();
        let mut drt = Drt::new();
        let mut rst = Rst::new();
        let mut regions = Vec::new();
        let mut next_region_file = ctx.region_file_base;
        let views_all = views_of(trace);
        let step = ctx.rssd.step.max(1);

        for (file, extent) in trace.file_extents() {
            if extent == 0 {
                continue;
            }
            // Fixed division: `harl_regions` equal regions, 4 KiB aligned.
            let raw = extent.div_ceil(u64::from(ctx.harl_regions.max(1)));
            let region_size = raw.div_ceil(step) * step;
            let n_regions = extent.div_ceil(region_size);
            // Per-region inherent requests (assigned by start offset),
            // concurrency-free (HARL's model predates the extension).
            let file_views: Vec<ReqView> = trace
                .records()
                .iter()
                .zip(&views_all)
                .filter(|(r, _)| r.file == file)
                .map(|(_, v)| ReqView { concurrency: 1, ..*v })
                .collect();
            let avg = if file_views.is_empty() {
                step
            } else {
                (file_views.iter().map(|v| v.len).sum::<u64>() / file_views.len() as u64).max(step)
            };
            let harl_rssd = RssdConfig {
                adaptive_bounds: false,
                bound_override: Some(avg),
                ..ctx.rssd.clone()
            };
            for ridx in 0..n_regions {
                let base = ridx * region_size;
                let len = region_size.min(extent - base);
                let region_file = FileId(next_region_file);
                next_region_file += 1;
                let inserted = drt.insert(DrtEntry {
                    o_file: file,
                    o_offset: base,
                    r_file: region_file,
                    r_offset: 0,
                    length: len,
                });
                debug_assert!(inserted, "HARL regions are disjoint by construction");
                // Requests of this region, shifted to region-local offsets.
                let region_views: Vec<ReqView> = file_views
                    .iter()
                    .filter(|v| v.offset >= base && v.offset < base + len)
                    .map(|v| ReqView { offset: v.offset - base, ..*v })
                    .collect();
                if let Some(result) = rssd(&region_views, &params, &harl_rssd) {
                    rst.set(region_file, result.pair);
                    if let Some(layout) = ctx.layout_for(result.pair.h, result.pair.s) {
                        layouts.push((region_file, layout));
                    }
                }
                regions.push(RegionInfo {
                    file: region_file,
                    len,
                    group: ridx as usize,
                    extents: 1,
                });
            }
        }
        Plan { scheme: Scheme::Harl, layouts, resolver: PlanResolver::Drt(drt), rst, regions }
    }
}

// ---------------------------------------------------------------- MHA --

/// The paper's scheme: group → migrate → per-region RSSD → redirect.
pub struct MhaPlanner;

impl LayoutPlanner for MhaPlanner {
    fn name(&self) -> &'static str {
        "MHA"
    }

    fn plan(&self, trace: &Trace, ctx: &PlannerContext) -> Plan {
        let params = ctx.effective_params();
        let views = views_of(trace);
        let feats: Vec<ReqFeature> = views.iter().map(ReqFeature::of).collect();
        let grouping = group_requests(&feats, &ctx.grouping);
        let base_align = ctx.region_align.unwrap_or(ctx.rssd.step.max(4096));

        // Pass 1: pack step-aligned, search stripe pairs per region.
        // Regions are independent searches, so they fan out across cores
        // (rayon) instead of serializing k stripe searches; the indexed
        // collect keeps region order — and therefore the plan — exactly
        // deterministic. Each search is itself data-parallel; rayon's
        // work-stealing composes the two levels.
        let build =
            crate::region::build_regions_aligned(trace, &grouping, ctx.region_file_base, base_align);
        let pairs: Vec<Option<StripePair>> = build
            .region_views
            .par_iter()
            .map(|v| rssd(v, &params, &ctx.rssd).map(|r| r.pair))
            .collect();

        // Selective application: keep only groups whose optimized layout
        // beats DEF's fixed 64 KB striping by the configured margin
        // (under the cost model, on the pass-1 region offsets).
        let include: Vec<bool> = build
            .region_views
            .par_iter()
            .zip(&pairs)
            .map(|(region_views, pair)| {
                if ctx.selective_min_gain <= 0.0 {
                    return true;
                }
                let Some(p) = pair else { return false };
                let def_cost = region_cost(
                    region_views,
                    &params,
                    StripePair { h: 64 << 10, s: 64 << 10 },
                );
                let opt_cost = region_cost(region_views, &params, *p);
                def_cost.is_finite()
                    && def_cost > 0.0
                    && (def_cost - opt_cost) / def_cost >= ctx.selective_min_gain
            })
            .collect();

        // Pass 2: repack each region aligned to its chosen SServer stripe
        // (when extents are at least that big), so the extent pitch sits
        // on the stripe grid and requests decompose without ragged tails;
        // then re-run the search on the final offsets.
        let aligns: Vec<u64> = build
            .region_views
            .iter()
            .zip(&pairs)
            .map(|(region_views, pair)| {
                let max_len = region_views.iter().map(|v| v.len).max().unwrap_or(0);
                match pair {
                    Some(p) if ctx.region_align.is_none() && p.s > 0 && max_len >= p.s => p.s,
                    _ => base_align,
                }
            })
            .collect();
        let build = crate::region::build_regions_filtered(
            trace,
            &grouping,
            ctx.region_file_base,
            &aligns,
            &include,
        );

        // Final searches on the repacked offsets, again region-parallel;
        // the table/layout installation below stays sequential in region
        // order so the plan is reproducible run to run.
        let results: Vec<Option<crate::rssd::RssdResult>> = build
            .region_views
            .par_iter()
            .map(|region_views| rssd(region_views, &params, &ctx.rssd))
            .collect();
        let mut layouts = Vec::new();
        let mut rst = Rst::new();
        for (region, result) in build.regions.iter().zip(results) {
            if let Some(result) = result {
                rst.set(region.file, result.pair);
                if let Some(layout) = ctx.layout_for(result.pair.h, result.pair.s) {
                    layouts.push((region.file, layout));
                }
            }
        }
        Plan {
            scheme: Scheme::Mha,
            layouts,
            resolver: PlanResolver::Drt(build.drt),
            rst,
            regions: build.regions,
        }
    }
}

// ---------------------------------------------------------- evaluation --

/// End-to-end evaluation of one scheme on one workload, as a builder:
/// build a fresh cluster, profile-plan from the trace, install, and
/// replay — the "subsequent run" of the paper's five-phase flow.
///
/// ```no_run
/// # use mha_core::schemes::{Evaluation, Scheme};
/// # use pfs_sim::{ClusterConfig, FaultPlan};
/// # let trace = iotrace::Trace::new();
/// # let cfg = ClusterConfig::paper_default();
/// # let faults = FaultPlan::none();
/// let healthy = Evaluation::of(Scheme::Mha, &trace, &cfg).report();
/// let degraded = Evaluation::of(Scheme::Mha, &trace, &cfg)
///     .faults(&faults)
///     .replan_around_faults(true)
///     .report();
/// ```
pub struct Evaluation<'a> {
    scheme: Scheme,
    trace: &'a Trace,
    cluster_cfg: &'a ClusterConfig,
    ctx: Option<&'a PlannerContext>,
    fault: Option<&'a FaultPlan>,
    replan: bool,
    sched: Option<SchedPolicy>,
    core: CoreSel,
}

impl<'a> Evaluation<'a> {
    /// Evaluate `scheme` on `trace` over a fresh cluster of shape
    /// `cluster_cfg`. Without further configuration, [`Self::run`]
    /// calibrates a default [`PlannerContext`] and replays fault-free.
    pub fn of(scheme: Scheme, trace: &'a Trace, cluster_cfg: &'a ClusterConfig) -> Self {
        Evaluation {
            scheme,
            trace,
            cluster_cfg,
            ctx: None,
            fault: None,
            replan: false,
            sched: None,
            core: CoreSel::Auto,
        }
    }

    /// Plan under `ctx` instead of a freshly calibrated default context
    /// (calibration probes device models — hoist it when evaluating many
    /// cells).
    #[must_use]
    pub fn context(mut self, ctx: &'a PlannerContext) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// Inject `faults` during the replay (stragglers, outages, losses,
    /// degraded devices). An empty plan leaves the evaluation bit-for-bit
    /// identical to a fault-free one.
    #[must_use]
    pub fn faults(mut self, faults: &'a FaultPlan) -> Self {
        self.fault = Some(faults);
        self
    }

    /// Let the planner see the fault plan's health view
    /// ([`FaultPlan::health_view`]) so it re-plans around lost and
    /// degraded servers (failover restriping). Without faults this is a
    /// no-op.
    #[must_use]
    pub fn replan_around_faults(mut self, replan: bool) -> Self {
        self.replan = replan;
        self
    }

    /// Replay under `policy` instead of whatever the session carries —
    /// the scheduler axis of the straggler study (client-side dispatch
    /// vs. layout replanning). An `Evaluation` that never calls this
    /// leaves the session's policy untouched.
    #[must_use]
    pub fn sched_policy(mut self, policy: SchedPolicy) -> Self {
        self.sched = Some(policy);
        self
    }

    /// Pin the replay core (default [`CoreSel::Auto`]) — experiment
    /// grids use this to assert serial/sharded equivalence per cell.
    #[must_use]
    pub fn core(mut self, core: CoreSel) -> Self {
        self.core = core;
        self
    }

    /// Run inside a caller-owned [`ReplaySession`] — the experiment grid
    /// threads one session (warm scratch, pinned schedule) through many
    /// cells. An `Evaluation` carrying faults installs its plan into the
    /// session; otherwise the session's existing fault plan applies.
    pub fn run_in(&self, session: &mut ReplaySession) -> Result<ReplayReport, ReplayError> {
        let calibrated;
        let base_ctx = match self.ctx {
            Some(ctx) => ctx,
            None => {
                calibrated = PlannerContext::for_cluster(self.cluster_cfg);
                &calibrated
            }
        };
        let degraded;
        let ctx = match (self.replan, self.fault) {
            (true, Some(plan)) if !plan.is_empty() => {
                let servers = self.cluster_cfg.hservers + self.cluster_cfg.sservers;
                degraded = base_ctx.clone().with_health(plan.health_view(servers));
                &degraded
            }
            _ => base_ctx,
        };
        let mut cluster = Cluster::try_new(self.cluster_cfg.clone())?;
        let plan = self.scheme.planner().plan(self.trace, ctx);
        apply_plan(&mut cluster, &plan);
        let mut resolver = plan.make_resolver(ctx.lookup_cost);
        if let Some(faults) = self.fault {
            session.set_fault_plan(faults.clone());
        }
        if let Some(policy) = self.sched {
            session.set_sched_policy(policy);
        }
        session.run(ReplayInput::trace(&mut cluster, self.trace, resolver.as_mut()), self.core)
    }

    /// Run in a fresh session.
    pub fn run(&self) -> Result<ReplayReport, ReplayError> {
        self.run_in(&mut ReplaySession::new())
    }

    /// [`Self::run`], panicking on error — the ergonomic form for tests
    /// and experiments where every input is known-good.
    pub fn report(&self) -> ReplayReport {
        self.run().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace::gen::ior::{generate as gen_ior, IorConfig};
    use iotrace::gen::lanl::{generate as gen_lanl, LanlConfig};
    use storage_model::IoOp;

    fn ctx() -> PlannerContext {
        PlannerContext::for_cluster(&ClusterConfig::paper_default())
    }

    fn eval(scheme: Scheme, t: &Trace, cfg: &ClusterConfig, c: &PlannerContext) -> ReplayReport {
        Evaluation::of(scheme, t, cfg).context(c).report()
    }

    fn mixed_ior() -> Trace {
        let mut cfg = IorConfig::mixed_sizes(&[128 << 10, 256 << 10], IoOp::Write);
        cfg.reqs_per_proc = 16;
        cfg.proc_mix = vec![16];
        gen_ior(&cfg)
    }

    #[test]
    fn def_plan_is_empty() {
        let p = DefPlanner.plan(&mixed_ior(), &ctx());
        assert!(p.layouts.is_empty());
        assert!(matches!(p.resolver, PlanResolver::Identity));
        assert_eq!(p.scheme.name(), "DEF");
    }

    #[test]
    fn plan_with_placement_attaches_where_it_fits() {
        let t = mixed_ior();
        let plan = MhaPlanner.plan(&t, &ctx());
        assert!(!plan.layouts.is_empty());
        assert_eq!(plan.redundant_layouts(), 0, "plans start striped");
        let rep = plan.clone().with_placement(Placement::Replicated(3));
        for ((file, orig), (_, with)) in plan.layouts.iter().zip(&rep.layouts) {
            if orig.segment_count() >= 3 {
                assert_eq!(with.placement(), Placement::Replicated(3), "{file:?}");
            } else {
                assert!(with.placement().is_striped(), "{file:?} too narrow, stays striped");
            }
            // Geometry is untouched either way.
            assert_eq!(with.round_size(), orig.round_size(), "{file:?}");
        }
        // A placement no layout can hold degrades the whole plan to
        // striped instead of failing it.
        let huge = plan.clone().with_placement(Placement::ErasureCoded(64, 8));
        assert_eq!(huge.redundant_layouts(), 0);
    }

    #[test]
    fn aal_assigns_uniform_stripes() {
        let c = ctx();
        let p = AalPlanner.plan(&mixed_ior(), &c);
        assert_eq!(p.layouts.len(), 1);
        let (_, layout) = &p.layouts[0];
        // Uniform: every server carries the same stripe.
        let stripes: Vec<u64> = layout.servers().map(|s| layout.stripe_of(s)).collect();
        assert_eq!(stripes.len(), 8);
        assert!(stripes.windows(2).all(|w| w[0] == w[1]), "{stripes:?}");
        assert!(stripes[0] > 0);
    }

    #[test]
    fn harl_divides_file_into_fixed_regions() {
        let c = ctx();
        let t = mixed_ior();
        let p = HarlPlanner.plan(&t, &c);
        assert_eq!(p.regions.len(), 8, "harl_regions = 8");
        let PlanResolver::Drt(drt) = &p.resolver else {
            panic!("HARL must redirect")
        };
        // Every byte of the file extent is covered by exactly one region.
        let extent = t.file_extents()[&FileId(0)];
        let covered: u64 = drt.entries().iter().map(|e| e.length).sum();
        assert_eq!(covered, {
            let step = 4096;
            let rsize = extent.div_ceil(8).div_ceil(step) * step;
            (extent.div_ceil(rsize) - 1) * rsize + {
                let last = extent % rsize;
                if last == 0 {
                    rsize
                } else {
                    last
                }
            }
        });
        assert!(!p.rst.is_empty());
    }

    #[test]
    fn harl_stripe_pairs_differ_from_uniform() {
        let c = ctx();
        let p = HarlPlanner.plan(&mixed_ior(), &c);
        for (_, pair) in p.rst.iter() {
            assert!(pair.s > pair.h, "SServer stripe strictly larger: {pair:?}");
        }
    }

    #[test]
    fn mha_builds_regions_and_rst() {
        let c = ctx();
        let t = gen_lanl(&LanlConfig::paper(10, IoOp::Write));
        let p = MhaPlanner.plan(&t, &c);
        assert!(!p.regions.is_empty());
        assert_eq!(p.rst.len(), p.regions.len());
        let PlanResolver::Drt(drt) = &p.resolver else {
            panic!("MHA must redirect")
        };
        assert!(!drt.is_empty());
        // Region bytes cover the trace bytes (plus alignment padding).
        let bytes: u64 = p.regions.iter().map(|r| r.len).sum();
        assert!(bytes >= t.total_bytes());
    }

    #[test]
    fn mha_separates_lanl_size_classes_into_regions() {
        let c = PlannerContext {
            grouping: GroupingConfig { k: 2, ..Default::default() },
            ..ctx()
        };
        let t = gen_lanl(&LanlConfig::paper(10, IoOp::Write));
        let p = MhaPlanner.plan(&t, &c);
        assert_eq!(p.regions.len(), 2);
        // The small-request region holds 16-byte extents only, one
        // aligned 4 KiB slot each: its length is loops · procs · 4096.
        let lens: Vec<u64> = p.regions.iter().map(|r| r.len).collect();
        let small = *lens.iter().min().expect("two regions");
        assert_eq!(small, 10 * 8 * 4096);
    }

    #[test]
    fn evaluate_runs_all_schemes() {
        let c = ctx();
        let t = gen_lanl(&LanlConfig::paper(4, IoOp::Write));
        let cfg = ClusterConfig::paper_default();
        for scheme in Scheme::all() {
            let r = eval(scheme, &t, &cfg, &c);
            assert!(r.bandwidth_mbps() > 0.0, "{}: zero bandwidth", scheme.name());
            assert_eq!(r.total_bytes, t.total_bytes(), "{}", scheme.name());
        }
    }

    #[test]
    fn mha_beats_def_on_heterogeneous_lanl() {
        let c = ctx();
        let t = gen_lanl(&LanlConfig::paper(12, IoOp::Write));
        let cfg = ClusterConfig::paper_default();
        let def = eval(Scheme::Def, &t, &cfg, &c);
        let mha = eval(Scheme::Mha, &t, &cfg, &c);
        assert!(
            mha.bandwidth_mbps() > def.bandwidth_mbps(),
            "MHA {} vs DEF {}",
            mha.bandwidth_mbps(),
            def.bandwidth_mbps()
        );
    }

    #[test]
    fn selective_zero_gain_migrates_everything() {
        let c = ctx();
        let t = gen_lanl(&LanlConfig::paper(8, IoOp::Write));
        let p = MhaPlanner.plan(&t, &c);
        let PlanResolver::Drt(drt) = &p.resolver else { panic!() };
        assert!(!drt.is_empty());
        assert!(p.regions.iter().all(|r| r.len > 0));
    }

    #[test]
    fn selective_impossible_gain_migrates_nothing() {
        let c = PlannerContext { selective_min_gain: 10.0, ..ctx() };
        let t = gen_lanl(&LanlConfig::paper(8, IoOp::Write));
        let p = MhaPlanner.plan(&t, &c);
        let PlanResolver::Drt(drt) = &p.resolver else { panic!() };
        assert!(drt.is_empty(), "no group can gain 1000%");
        assert!(p.rst.is_empty());
        // Replay still works: everything falls back to the original file.
        let r = eval(Scheme::Mha, &t, &ClusterConfig::paper_default(), &c);
        assert_eq!(r.total_bytes, t.total_bytes());
    }

    #[test]
    fn selective_moderate_gain_keeps_high_value_regions() {
        // LANL's large-request groups gain hugely over DEF; a moderate
        // threshold keeps them while still migrating less than everything
        // OR everything if all groups clear the bar — but never nothing.
        let c = PlannerContext { selective_min_gain: 0.3, ..ctx() };
        let t = gen_lanl(&LanlConfig::paper(8, IoOp::Write));
        let p = MhaPlanner.plan(&t, &c);
        let migrated: u64 = p.regions.iter().map(|r| r.len).sum();
        assert!(migrated > 0, "high-gain regions must be kept");
        let cfg = ClusterConfig::paper_default();
        let sel = eval(Scheme::Mha, &t, &cfg, &c);
        let def = eval(Scheme::Def, &t, &cfg, &ctx());
        assert!(sel.bandwidth_mbps() > def.bandwidth_mbps());
    }

    #[test]
    fn scheme_enum_roundtrip() {
        for s in Scheme::all() {
            assert_eq!(s.planner().name(), s.name());
        }
    }

    #[test]
    fn pristine_health_plans_identically() {
        // All-nominal health must change nothing: same effective params
        // (bit for bit) and the same MHA plan.
        let base = ctx();
        let nominal = ctx().with_health(vec![ServerHealth::nominal(); 8]);
        let e0 = base.effective_params();
        let e1 = nominal.effective_params();
        assert_eq!((e1.m, e1.n), (6, 2));
        assert_eq!(e0.alpha_h.to_bits(), e1.alpha_h.to_bits());
        assert_eq!(e0.beta_sw.to_bits(), e1.beta_sw.to_bits());
        let t = gen_lanl(&LanlConfig::paper(6, IoOp::Write));
        let p0 = MhaPlanner.plan(&t, &base);
        let p1 = MhaPlanner.plan(&t, &nominal);
        assert_eq!(p0.layouts.len(), p1.layouts.len());
        for ((f0, l0), (f1, l1)) in p0.layouts.iter().zip(&p1.layouts) {
            assert_eq!(f0, f1);
            assert_eq!(l0.round_size(), l1.round_size());
            assert!(l0.servers().eq(l1.servers()));
        }
    }

    #[test]
    fn dead_and_excluded_servers_drop_out_of_new_layouts() {
        // HServer 0 is lost, SServer 6 is slowed past the exclusion
        // threshold: no planner may place new data on either.
        let faults = FaultPlan::none().down(0, 0.0).slow_server(6, 4.0);
        let c = ctx().with_health(faults.health_view(8));
        assert!(!c.server_usable(0) && !c.server_usable(6));
        let eff = c.effective_params();
        assert_eq!((eff.m, eff.n), (5, 1));
        let t = gen_lanl(&LanlConfig::paper(6, IoOp::Write));
        for scheme in [Scheme::Aal, Scheme::Harl, Scheme::Mha] {
            let p = scheme.planner().plan(&t, &c);
            assert!(!p.layouts.is_empty(), "{}", scheme.name());
            for (_, layout) in &p.layouts {
                assert!(
                    layout.servers().all(|s| s.0 != 0 && s.0 != 6),
                    "{} placed data on a dead/excluded server",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn surviving_slowdowns_reweight_the_cost_model() {
        // A tolerable (below-threshold) straggler stays usable but
        // inflates its class's service terms.
        let faults = FaultPlan::none().slow_server(0, 2.0);
        let c = ctx().with_health(faults.health_view(8));
        assert!(c.server_usable(0));
        let eff = c.effective_params();
        assert_eq!((eff.m, eff.n), (6, 2));
        let mean = (2.0 + 5.0) / 6.0;
        assert!((eff.alpha_h / c.params.alpha_h - mean).abs() < 1e-12);
        assert_eq!(eff.alpha_sr.to_bits(), c.params.alpha_sr.to_bits());
    }

    #[test]
    fn replanning_beats_static_mha_under_a_straggler() {
        // The degraded-mode payoff: MHA re-planned around a straggling
        // SServer (which its layouts lean on for LANL's small requests)
        // outperforms the same scheme planned blind.
        let cfg = ClusterConfig::paper_default();
        let c = ctx();
        let t = gen_lanl(&LanlConfig::paper(8, IoOp::Write));
        let faults = FaultPlan::none().slow_server(6, 8.0);
        let blind = Evaluation::of(Scheme::Mha, &t, &cfg)
            .context(&c)
            .faults(&faults)
            .report();
        let replanned = Evaluation::of(Scheme::Mha, &t, &cfg)
            .context(&c)
            .faults(&faults)
            .replan_around_faults(true)
            .report();
        assert!(
            replanned.bandwidth_mbps() > blind.bandwidth_mbps(),
            "replanned {} <= blind {}",
            replanned.bandwidth_mbps(),
            blind.bandwidth_mbps()
        );
    }

    #[test]
    fn evaluation_with_empty_faults_is_bit_identical() {
        let cfg = ClusterConfig::paper_default();
        let c = ctx();
        let t = gen_lanl(&LanlConfig::paper(4, IoOp::Write));
        let plain = eval(Scheme::Mha, &t, &cfg, &c);
        let empty = FaultPlan::none();
        let faultless = Evaluation::of(Scheme::Mha, &t, &cfg)
            .context(&c)
            .faults(&empty)
            .replan_around_faults(true)
            .report();
        assert_eq!(plain.makespan, faultless.makespan);
        assert_eq!(plain.server_busy_secs(), faultless.server_busy_secs());
        assert_eq!(
            plain.request_latency.sum().to_bits(),
            faultless.request_latency.sum().to_bits()
        );
    }

    #[test]
    fn pinned_schedule_evaluation_matches_the_builder() {
        // Hoisting the replay schedule into a pinned session changes
        // where the ordering work happens, never the report.
        let c = ctx();
        let t = gen_lanl(&LanlConfig::paper(4, IoOp::Write));
        let cfg = ClusterConfig::paper_default();
        let via_builder = eval(Scheme::Harl, &t, &cfg, &c);
        let schedule = pfs_sim::ReplaySchedule::for_trace(&t);
        let mut pinned = ReplaySession::new().with_schedule(schedule);
        let via_sched = Evaluation::of(Scheme::Harl, &t, &cfg)
            .context(&c)
            .run_in(&mut pinned)
            .expect("pinned evaluation");
        assert_eq!(via_builder.makespan, via_sched.makespan);
        assert_eq!(via_builder.server_busy_secs(), via_sched.server_busy_secs());
    }
}
