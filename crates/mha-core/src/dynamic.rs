//! Dynamic (online) MHA — the paper's stated future work:
//! *"We also intend to develop dynamic approaches to further improve the
//! performance of those applications with unpredictable patterns."*
//!
//! The static pipeline needs a complete profiled trace before it can
//! plan. The dynamic controller instead runs the application in
//! **epochs** of a fixed number of I/O phases:
//!
//! * the first epoch runs unoptimized (default layout) while the
//!   collector observes,
//! * after each epoch the controller re-plans MHA from everything
//!   observed so far — but only when the access pattern has *drifted*
//!   since the last plan (mean request size or size dispersion moved by
//!   more than a configurable factor), so stable workloads replan once,
//! * adopting a new plan costs real I/O: every extent whose mapping
//!   changed is **migrated** (read from its current location, written to
//!   its new region), and that migration traffic is replayed against the
//!   same cluster and charged to the application's clock.
//!
//! The report shows the resulting trade: dynamic MHA approaches the
//! oracle (plan-from-full-trace) bandwidth on stable patterns and stays
//! well above DEF on drifting ones, while paying visible migration time.
//!
//! ## Durable mode
//!
//! [`run_dynamic_durable`] runs the same controller against a
//! [`PipelineStore`]: migration proceeds in **journaled batches** with a
//! write-ahead invariant — a batch's intended DRT entries are journaled
//! before its bytes move, its commit record is written after, and an
//! entry is only published into the live DRT once its batch committed.
//! [`crate::persist::recover`] then makes a crash at any point safe:
//! committed batches roll forward, uncommitted ones are discarded, and
//! the DRT never resolves to data that was never migrated. Each batch
//! is replayed as its own barrier phase (the commit record *is* the
//! barrier), so durable migration time is ≥ the one-shot estimate of
//! [`run_dynamic`] — that gap is the price of resumability.

use crate::persist::{PersistError, PipelineStore};
use crate::region::{Drt, DrtEntry, Rst};
use crate::schemes::{apply_plan, LayoutPlanner, MhaPlanner, Plan, PlanResolver, PlannerContext};
use iotrace::record::Rank;
use iotrace::{Trace, TraceRecord, TraceStats};
use pfs_sim::{
    Cluster, ClusterConfig, CoreSel, IdentityResolver, ReplayInput, ReplayReport, ReplaySession,
    Resolution, Resolver,
};
use simrt::{SimDuration, SimTime};
use storage_model::IoOp;

/// Online placement state carried across epochs: the evolving DRT plus
/// per-region append cursors, so **new writes are placed directly into
/// the best-matching region** (no later migration needed — data that has
/// never been written has no old home).
#[derive(Debug, Clone)]
struct OnlineState {
    drt: Drt,
    regions: Vec<OnlineRegion>,
}

#[derive(Debug, Clone)]
struct OnlineRegion {
    file: iotrace::FileId,
    cursor: u64,
    align: u64,
    /// Mean migrated extent size — the online stand-in for the group
    /// center (new requests join the region with the closest size).
    mean_size: f64,
}

impl OnlineState {
    /// Region with the mean extent size closest to `len` (log-scale).
    fn nearest_region(&self, len: u64) -> usize {
        let target = (len.max(1) as f64).ln();
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, r) in self.regions.iter().enumerate() {
            let d = (r.mean_size.max(1.0).ln() - target).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

/// The online resolver: translates through the evolving DRT and appends
/// mappings for writes to bytes no region owns yet.
struct OnlineResolver<'a> {
    state: &'a mut OnlineState,
    lookup: SimDuration,
    appended_bytes: u64,
}

impl Resolver for OnlineResolver<'_> {
    fn resolve(&mut self, rec: &TraceRecord) -> Resolution {
        if rec.op == IoOp::Write {
            // Claim any unmapped subranges for the best-matching region.
            let gaps: Vec<(u64, u64)> = self
                .state
                .drt
                .translate(rec.file, rec.offset, rec.len)
                .into_iter()
                .filter(|p| p.file == rec.file)
                .map(|p| (p.offset, p.len))
                .collect();
            for (off, len) in gaps {
                let idx = self.state.nearest_region(len);
                let region = &mut self.state.regions[idx];
                let inserted = self.state.drt.insert(DrtEntry {
                    o_file: rec.file,
                    o_offset: off,
                    r_file: region.file,
                    r_offset: region.cursor,
                    length: len,
                });
                debug_assert!(inserted, "gap is uncovered by construction");
                region.cursor = (region.cursor + len).div_ceil(region.align) * region.align;
                self.appended_bytes += len;
            }
        }
        Resolution {
            extents: self.state.drt.translate(rec.file, rec.offset, rec.len),
            overhead: self.lookup,
        }
    }
}

/// Dynamic controller configuration.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Phases per epoch (re-planning opportunity cadence).
    pub epoch_phases: u32,
    /// Relative change in mean request size or size CV that counts as
    /// pattern drift (e.g. 0.25 = 25 %).
    pub drift_threshold: f64,
    /// Number of ranks used to carry migration traffic.
    pub migration_ranks: u32,
    /// Extents migrated per barrier phase of migration traffic.
    pub migration_batch: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            epoch_phases: 12,
            drift_threshold: 0.25,
            migration_ranks: 8,
            migration_batch: 16,
        }
    }
}

/// Outcome of one epoch.
#[derive(Debug, Clone)]
pub struct EpochStat {
    /// Epoch index.
    pub epoch: usize,
    /// Application requests replayed.
    pub requests: usize,
    /// Application bytes moved.
    pub bytes: u64,
    /// Epoch application I/O time.
    pub io_time: SimDuration,
    /// Whether a re-plan happened after this epoch.
    pub replanned: bool,
    /// Bytes migrated when adopting the new plan (0 otherwise).
    pub migrated_bytes: u64,
    /// Time spent migrating.
    pub migration_time: SimDuration,
}

/// Outcome of a dynamic run.
#[derive(Debug, Clone)]
pub struct DynamicReport {
    /// Per-epoch breakdown.
    pub epochs: Vec<EpochStat>,
    /// Total application bytes.
    pub total_bytes: u64,
    /// Total time: application I/O plus migration stalls.
    pub total_time: SimDuration,
    /// Number of re-plans performed.
    pub replans: usize,
    /// Total bytes migrated across all re-plans.
    pub migrated_bytes: u64,
}

impl DynamicReport {
    /// Effective application bandwidth including migration stalls, MB/s.
    pub fn bandwidth_mbps(&self) -> f64 {
        if self.total_time.is_zero() {
            return 0.0;
        }
        self.total_bytes as f64 / 1e6 / self.total_time.as_secs_f64()
    }
}

/// Run `trace` under the dynamic controller (in-memory state only).
pub fn run_dynamic(
    cluster_cfg: &ClusterConfig,
    trace: &Trace,
    ctx: &PlannerContext,
    cfg: &DynamicConfig,
) -> DynamicReport {
    match run_dynamic_inner(cluster_cfg, trace, ctx, cfg, None) {
        Ok(report) => report,
        Err(_) => unreachable!("without a store there is nothing to fail"),
    }
}

/// Run `trace` under the dynamic controller with crash-consistent state:
/// the DRT/RST commit to `store` at every epoch boundary, and migration
/// runs in journaled batches (see the module docs). After a crash,
/// reopen the store, call [`crate::persist::recover`], and re-run.
pub fn run_dynamic_durable(
    cluster_cfg: &ClusterConfig,
    trace: &Trace,
    ctx: &PlannerContext,
    cfg: &DynamicConfig,
    store: &PipelineStore,
) -> Result<DynamicReport, PersistError> {
    run_dynamic_inner(cluster_cfg, trace, ctx, cfg, Some(store))
}

fn run_dynamic_inner(
    cluster_cfg: &ClusterConfig,
    trace: &Trace,
    ctx: &PlannerContext,
    cfg: &DynamicConfig,
    store: Option<&PipelineStore>,
) -> Result<DynamicReport, PersistError> {
    let epochs = split_epochs(trace, cfg.epoch_phases);
    let mut observed: Vec<TraceRecord> = Vec::new();
    // Layouts accumulate across re-plans: region files from earlier plans
    // keep holding carried-forward data, so their layouts stay installed.
    let mut layout_book: Vec<(iotrace::FileId, pfs_sim::LayoutSpec)> = Vec::new();
    let mut state: Option<OnlineState> = None;
    let mut plan_stats: Option<TraceStats> = None;
    // All plans' RST rows, accumulated: region files from earlier plans
    // keep holding data, so their stripe pairs must stay resolvable
    // after a reload.
    let mut rst_book = Rst::new();
    let mut report = DynamicReport {
        epochs: Vec::new(),
        total_bytes: 0,
        total_time: SimDuration::ZERO,
        replans: 0,
        migrated_bytes: 0,
    };
    // One session across all epochs: the replay scratch stays warm.
    let mut session = ReplaySession::new();

    for (e, epoch_trace) in epochs.iter().enumerate() {
        // Replay the epoch under the current mapping; new writes are
        // placed directly into regions by the online resolver.
        let mut cluster = Cluster::new(cluster_cfg.clone());
        for (file, layout) in &layout_book {
            cluster.mds_mut().set_layout(*file, layout.clone());
        }
        let epoch_report: ReplayReport = match &mut state {
            Some(st) => {
                let mut resolver =
                    OnlineResolver { state: st, lookup: ctx.lookup_cost, appended_bytes: 0 };
                session.run(ReplayInput::trace(&mut cluster, epoch_trace, &mut resolver), CoreSel::Auto)
            }
            None => session.run(ReplayInput::trace(&mut cluster, epoch_trace, &mut IdentityResolver), CoreSel::Auto),
        }
        .expect("unscheduled fault-free replay cannot fail");
        observed.extend_from_slice(epoch_trace.records());
        report.total_bytes += epoch_report.total_bytes;
        report.total_time += epoch_report.makespan;

        // Decide whether to (re-)plan from everything observed so far.
        let observed_trace = Trace::from_records(observed.clone());
        let stats = TraceStats::of(&observed_trace);
        let should_plan = match &plan_stats {
            None => true, // first epoch completed: initial plan
            Some(prev) => drifted(prev, &stats, cfg.drift_threshold),
        };
        let (mut replanned, mut migrated, mut mig_time) = (false, 0u64, SimDuration::ZERO);
        if should_plan && !observed.is_empty() && e + 1 < epochs.len() {
            // Fresh region-file id range per re-plan: carried-forward data
            // keeps living in earlier plans' region files.
            let mut plan_ctx = ctx.clone();
            plan_ctx.region_file_base =
                ctx.region_file_base + report.replans as u32 * 65_536;
            let new_plan = MhaPlanner.plan(&observed_trace, &plan_ctx);
            let adoption = adopt_plan(
                &new_plan,
                state.as_ref().map(|s| &s.drt),
                &observed,
                plan_ctx.region_file_base,
                ctx.rssd.step.max(4096),
            );
            // Migrate only the hot extents (observed more than once): the
            // controller must not pay to move data it has no evidence
            // will be touched again.
            let (bytes, time) = match store {
                None => migrate(
                    cluster_cfg,
                    state.as_ref().map(|s| &s.drt),
                    &layout_book,
                    &new_plan,
                    &adoption.to_migrate,
                    cfg,
                ),
                Some(store) => {
                    for (file, pair) in new_plan.rst.iter() {
                        rst_book.set(file, pair);
                    }
                    // Commit the adopted mapping *without* the entries
                    // still waiting to move: until a batch's journal
                    // record commits, lookups must keep resolving to the
                    // old (valid) home.
                    let base = drt_minus(&adoption.state.drt, &adoption.to_migrate);
                    store.save_tables(&base, &rst_book)?;
                    let mut published = base;
                    let moved = migrate_durable(
                        cluster_cfg,
                        state.as_ref().map(|s| &s.drt),
                        &layout_book,
                        &new_plan,
                        &adoption.to_migrate,
                        cfg,
                        store,
                        &mut published,
                    )?;
                    // All batches committed: publish the full mapping and
                    // retire the journal.
                    store.save_tables(&published, &rst_book)?;
                    store.clear_journal()?;
                    moved
                }
            };
            migrated = bytes;
            mig_time = time;
            report.replans += 1;
            report.migrated_bytes += bytes;
            report.total_time += time;
            plan_stats = Some(stats);
            layout_book.extend(new_plan.layouts.iter().cloned());
            state = Some(adoption.state);
            replanned = true;
        }
        // Epoch boundary: placements appended online during the replay
        // become durable here (a crash inside the epoch replays it from
        // the last committed generation).
        if let (Some(store), Some(st)) = (store, &state) {
            if !replanned {
                store.save_tables(&st.drt, &rst_book)?;
            }
        }
        report.epochs.push(EpochStat {
            epoch: e,
            requests: epoch_trace.len(),
            bytes: epoch_report.total_bytes,
            io_time: epoch_report.makespan,
            replanned,
            migrated_bytes: migrated,
            migration_time: mig_time,
        });
    }
    if let Some(store) = store {
        store.gc()?;
    }
    Ok(report)
}

/// `full` minus the exact `(o_file, o_offset)` keys of `removed` — the
/// committed-before-migration base mapping.
fn drt_minus(full: &Drt, removed: &[DrtEntry]) -> Drt {
    let removed_keys: std::collections::HashSet<(u32, u64)> =
        removed.iter().map(|e| (e.o_file.0, e.o_offset)).collect();
    let mut out = Drt::new();
    for e in full.entries() {
        if !removed_keys.contains(&(e.o_file.0, e.o_offset)) {
            let inserted = out.insert(e);
            debug_assert!(inserted, "subset of a valid DRT stays non-overlapping");
        }
    }
    out
}

/// Result of adopting a new plan online.
struct Adoption {
    /// The pruned mapping + append cursors to run the next epochs with.
    state: OnlineState,
    /// Hot entries that must physically move (new home differs).
    to_migrate: Vec<DrtEntry>,
}

/// Build the adopted mapping from a fresh plan:
///
/// * **hot** extents (observed ≥ 2 times) adopt the new plan's mapping
///   and are scheduled for migration if their home changes,
/// * **warm** extents (already region-resident from earlier placement)
///   carry their existing mapping forward untouched,
/// * **cold** extents (seen once, still in the original file) are not
///   migrated — evidence says they may never be touched again.
fn adopt_plan(
    new_plan: &Plan,
    old_drt: Option<&Drt>,
    observed: &[TraceRecord],
    region_file_base: u32,
    step: u64,
) -> Adoption {
    let PlanResolver::Drt(new_drt) = &new_plan.resolver else {
        return Adoption {
            state: OnlineState { drt: Drt::new(), regions: Vec::new() },
            to_migrate: Vec::new(),
        };
    };
    // Access counts per exact extent.
    let mut counts: std::collections::HashMap<(u32, u64, u64), u32> =
        std::collections::HashMap::new();
    for r in observed {
        *counts.entry((r.file.0, r.offset, r.len)).or_insert(0) += 1;
    }

    let mut pruned = Drt::new();
    let mut to_migrate = Vec::new();
    for entry in new_drt.entries() {
        let hot = counts
            .get(&(entry.o_file.0, entry.o_offset, entry.length))
            .is_some_and(|&c| c >= 2);
        let old_home = old_drt.map(|d| d.translate(entry.o_file, entry.o_offset, entry.length));
        let already_in_regions = old_home
            .as_ref()
            .is_some_and(|pieces| pieces.iter().all(|p| p.file != entry.o_file));
        if hot {
            pruned.insert(entry);
            let unchanged = old_drt.is_some_and(|d| {
                d.lookup_exact(entry.o_file, entry.o_offset, entry.length)
                    == Some((entry.r_file, entry.r_offset))
            });
            if !unchanged {
                to_migrate.push(entry);
            }
        } else if already_in_regions {
            // Carry the existing placement forward.
            let mut off = entry.o_offset;
            for piece in old_home.expect("checked above") {
                pruned.insert(DrtEntry {
                    o_file: entry.o_file,
                    o_offset: off,
                    r_file: piece.file,
                    r_offset: piece.offset,
                    length: piece.len,
                });
                off += piece.len;
            }
        }
        // Cold and never migrated: stays in the original file.
    }

    // Append cursors come from the new plan's regions (fresh files).
    let regions = new_plan
        .regions
        .iter()
        .filter(|r| r.file.0 >= region_file_base)
        .map(|r| {
            let mean = if r.extents > 0 { r.len as f64 / r.extents as f64 } else { step as f64 };
            let align = new_plan
                .rst
                .get(r.file)
                .map(|p| if mean >= p.s as f64 && p.s > 0 { p.s } else { step })
                .unwrap_or(step)
                .max(1);
            OnlineRegion { file: r.file, cursor: r.len.max(1), align, mean_size: mean }
        })
        .collect();

    Adoption { state: OnlineState { drt: pruned, regions }, to_migrate }
}

/// Split a trace into epochs of `epoch_phases` consecutive phases.
fn split_epochs(trace: &Trace, epoch_phases: u32) -> Vec<Trace> {
    let epoch_phases = epoch_phases.max(1);
    let mut out: Vec<Vec<TraceRecord>> = Vec::new();
    for rec in trace.records() {
        let idx = (rec.phase / epoch_phases) as usize;
        while out.len() <= idx {
            out.push(Vec::new());
        }
        out[idx].push(*rec);
    }
    out.into_iter()
        .filter(|v| !v.is_empty())
        .map(Trace::from_records)
        .collect()
}

/// Has the observed pattern drifted relative to the stats the current
/// plan was built from?
fn drifted(prev: &TraceStats, now: &TraceStats, threshold: f64) -> bool {
    let rel = |a: f64, b: f64| -> f64 {
        if a == 0.0 && b == 0.0 {
            0.0
        } else {
            (a - b).abs() / a.abs().max(b.abs())
        }
    };
    rel(prev.mean_request, now.mean_request) > threshold
        || rel(prev.size_cv, now.size_cv) > threshold
        || rel(f64::from(prev.max_concurrency), f64::from(now.max_concurrency)) > threshold
}

/// Simulate physically moving `entries` to their new homes: each is read
/// from its current location (old mapping or the original file) and
/// written to its new region position, replayed as real cluster traffic.
fn migrate(
    cluster_cfg: &ClusterConfig,
    old_drt: Option<&Drt>,
    layout_book: &[(iotrace::FileId, pfs_sim::LayoutSpec)],
    new_plan: &Plan,
    entries: &[DrtEntry],
    cfg: &DynamicConfig,
) -> (u64, SimDuration) {
    // Records: one read from the current home + one write to the new.
    let mut records: Vec<TraceRecord> = Vec::new();
    let mut phase = 0u32;
    let mut in_batch = 0usize;
    let mut bytes = 0u64;
    for entry in entries {
        let rank = Rank((records.len() as u32 / 2) % cfg.migration_ranks.max(1));
        let ts = SimTime::ZERO + SimDuration::from_millis(10) * u64::from(phase);
        // Read from wherever the bytes currently live (old region or the
        // original file) ...
        let src = old_drt
            .map(|d| d.translate(entry.o_file, entry.o_offset, entry.length))
            .unwrap_or_default();
        let srcs = if src.is_empty() {
            vec![pfs_sim::PhysExtent {
                file: entry.o_file,
                offset: entry.o_offset,
                len: entry.length,
            }]
        } else {
            src
        };
        for s in srcs {
            records.push(TraceRecord {
                pid: 9000 + rank.0,
                rank,
                file: s.file,
                op: IoOp::Read,
                offset: s.offset,
                len: s.len,
                ts,
                phase,
            });
        }
        // ... and write into the new region.
        records.push(TraceRecord {
            pid: 9000 + rank.0,
            rank,
            file: entry.r_file,
            op: IoOp::Write,
            offset: entry.r_offset,
            len: entry.length,
            ts,
            phase,
        });
        bytes += entry.length;
        in_batch += 1;
        if in_batch >= cfg.migration_batch {
            in_batch = 0;
            phase += 1;
        }
    }
    if records.is_empty() {
        return (0, SimDuration::ZERO);
    }
    records.sort_by_key(|r| (r.phase, r.rank, r.file, r.offset));
    let migration_trace = Trace::from_records(records);
    let mut cluster = Cluster::new(cluster_cfg.clone());
    // Accumulated layouts govern reads of old regions; the new plan's
    // layouts govern the writes.
    for (file, layout) in layout_book {
        cluster.mds_mut().set_layout(*file, layout.clone());
    }
    apply_plan(&mut cluster, new_plan);

    let rep = ReplaySession::new()
        .run(ReplayInput::trace(&mut cluster, &migration_trace, &mut IdentityResolver), CoreSel::Auto)
        .expect("unscheduled fault-free replay cannot fail");
    (bytes, rep.makespan)
}

/// Journaled, resumable variant of [`migrate`]: entries move in batches
/// of `cfg.migration_batch`, each under the write-ahead discipline
///
/// 1. journal the batch's intended DRT entries,
/// 2. replay the batch's read-old/write-new traffic,
/// 3. write the batch's commit record (fsynced),
/// 4. publish the entries into `published`.
///
/// A crash between 1 and 3 leaves an uncommitted journal batch that
/// [`crate::persist::recover`] discards (the old mapping still resolves
/// to valid bytes — migration copies, it does not destroy); a crash
/// after 3 leaves a committed batch that recovery rolls forward. Each
/// batch is replayed on its own cluster because the commit record is a
/// hard barrier: batch *n + 1* must not move until batch *n* is durable.
#[allow(clippy::too_many_arguments)]
fn migrate_durable(
    cluster_cfg: &ClusterConfig,
    old_drt: Option<&Drt>,
    layout_book: &[(iotrace::FileId, pfs_sim::LayoutSpec)],
    new_plan: &Plan,
    entries: &[DrtEntry],
    cfg: &DynamicConfig,
    store: &PipelineStore,
    published: &mut Drt,
) -> Result<(u64, SimDuration), PersistError> {
    let mut bytes = 0u64;
    let mut time = SimDuration::ZERO;
    for (b, chunk) in entries.chunks(cfg.migration_batch.max(1)).enumerate() {
        let batch = b as u32;
        store.journal_batch(batch, chunk)?;

        let mut records: Vec<TraceRecord> = Vec::new();
        for entry in chunk {
            let rank = Rank((records.len() as u32 / 2) % cfg.migration_ranks.max(1));
            let src = old_drt
                .map(|d| d.translate(entry.o_file, entry.o_offset, entry.length))
                .unwrap_or_default();
            let srcs = if src.is_empty() {
                vec![pfs_sim::PhysExtent {
                    file: entry.o_file,
                    offset: entry.o_offset,
                    len: entry.length,
                }]
            } else {
                src
            };
            for s in srcs {
                records.push(TraceRecord {
                    pid: 9000 + rank.0,
                    rank,
                    file: s.file,
                    op: IoOp::Read,
                    offset: s.offset,
                    len: s.len,
                    ts: SimTime::ZERO,
                    phase: 0,
                });
            }
            records.push(TraceRecord {
                pid: 9000 + rank.0,
                rank,
                file: entry.r_file,
                op: IoOp::Write,
                offset: entry.r_offset,
                len: entry.length,
                ts: SimTime::ZERO,
                phase: 0,
            });
        }
        if !records.is_empty() {
            records.sort_by_key(|r| (r.rank, r.file, r.offset));
            let migration_trace = Trace::from_records(records);
            let mut cluster = Cluster::new(cluster_cfg.clone());
            for (file, layout) in layout_book {
                cluster.mds_mut().set_layout(*file, layout.clone());
            }
            apply_plan(&mut cluster, new_plan);
            let rep = ReplaySession::new()
                .run(ReplayInput::trace(&mut cluster, &migration_trace, &mut IdentityResolver), CoreSel::Auto)
                .expect("unscheduled fault-free replay cannot fail");
            time += rep.makespan;
        }

        store.commit_batch(batch)?;
        for entry in chunk {
            if published.lookup_exact(entry.o_file, entry.o_offset, entry.length)
                != Some((entry.r_file, entry.r_offset))
            {
                let inserted = published.insert(*entry);
                debug_assert!(inserted, "to-migrate entries are disjoint from the base");
            }
            bytes += entry.length;
        }
    }
    Ok((bytes, time))
}

// ------------------------------------------------------------------
// Lazy on-access migration
// ------------------------------------------------------------------

/// A DRT entry journaled for migration whose bytes have not moved yet.
///
/// The entry's write-ahead intent (`mig:`) is already on disk; the copy
/// itself is deferred to the first replayed access of the extent (or to
/// [`LazyMigrator::drain`]). Until the copy's commit record (`migc:`)
/// is written, lookups keep resolving to the old — still valid — home.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRedirect {
    /// The planned mapping this extent will adopt.
    pub entry: DrtEntry,
    /// Journal batch carrying this entry's write-ahead intent (one
    /// batch per entry: an extent either migrated atomically or not at
    /// all — there is no half-migrated region).
    pub batch: u32,
    /// Whether the first-access copy happened (entry is published).
    pub migrated: bool,
    /// Whether a newer plan superseded this redirect before it moved
    /// (its intent never commits; recovery discards it).
    pub cancelled: bool,
}

/// Resolver that migrates pending extents on first access instead of in
/// an eager stop-the-world batch.
///
/// State machine per extent (see DESIGN.md §15):
///
/// 1. `add_pending` journals the intent (`mig:` record, fsynced by the
///    store's WAL) — the extent keeps resolving to its old home;
/// 2. the first replayed access that overlaps the extent pays the copy:
///    its resolution overhead is charged the modeled read-old +
///    write-new time, the batch's commit record (`migc:`) is written,
///    and the entry is published into the live DRT;
/// 3. every later access resolves through the published mapping at
///    plain lookup cost.
///
/// A crash between the copy and the commit record leaves an uncommitted
/// journal batch that [`crate::persist::recover`] discards — the copy
/// is non-destructive, so the old mapping still resolves to valid
/// bytes and a retry simply re-migrates. A crash after the commit
/// record rolls the entry forward. Store errors (including injected
/// kills) are stashed and surfaced by [`LazyMigrator::check`]; after an
/// error the resolver stops touching the store, mimicking a killed
/// process.
pub struct LazyMigrator<'a> {
    store: crate::persist::TenantStore<'a>,
    published: Drt,
    pending: Vec<PendingRedirect>,
    /// Per original file: `o_offset -> (length, index into pending)`
    /// for unmigrated entries. Pending extents never overlap.
    index: std::collections::HashMap<u32, std::collections::BTreeMap<u64, (u64, usize)>>,
    lookup: SimDuration,
    /// Fixed per-copy setup time (two network round trips).
    copy_latency: SimDuration,
    /// Modeled copy cost per byte (read old home + transfer + write new).
    copy_secs_per_byte: f64,
    next_batch: u32,
    on_access_migrations: usize,
    migrated_bytes: u64,
    err: Option<PersistError>,
}

impl<'a> LazyMigrator<'a> {
    /// Start from the committed `base` mapping. The copy-cost model is
    /// derived from `cluster`: a migrated byte pays a read from the old
    /// home (HDD sustained rate — the conservative case), a transfer,
    /// and a write to the new home (SSD peak rate), plus two link
    /// round trips of setup per extent.
    pub fn new(
        store: &'a PipelineStore,
        base: Drt,
        cluster: &ClusterConfig,
        lookup: SimDuration,
    ) -> Self {
        Self::for_tenant(store, iotrace::TenantId(0), base, cluster, lookup)
    }

    /// [`LazyMigrator::new`], journaling into `tenant`'s namespace of a
    /// shared store. Each tenant's intents and commits live under their
    /// own journal keys, so concurrent tenants on one WAL recover
    /// independently ([`crate::persist::recover_tenant`]). Tenant 0 is
    /// byte-identical to [`LazyMigrator::new`].
    pub fn for_tenant(
        store: &'a PipelineStore,
        tenant: iotrace::TenantId,
        base: Drt,
        cluster: &ClusterConfig,
        lookup: SimDuration,
    ) -> Self {
        let per_byte = 1.0 / cluster.hdd.transfer_bps
            + 1.0 / cluster.link.bandwidth_bps
            + 1.0 / cluster.ssd.write_bps;
        LazyMigrator {
            store: store.tenant(tenant),
            published: base,
            pending: Vec::new(),
            index: std::collections::HashMap::new(),
            lookup,
            copy_latency: SimDuration::from_nanos((4.0 * cluster.link.latency_s * 1e9) as u64),
            copy_secs_per_byte: per_byte,
            next_batch: 0,
            on_access_migrations: 0,
            migrated_bytes: 0,
            err: None,
        }
    }

    /// Journal `entries` as pending redirects (the write-ahead step).
    ///
    /// Entries any part of whose extent already resolves away from the
    /// original file in the published mapping are skipped (they carry
    /// forward — re-homing published data would need a second move,
    /// and a partially-published range must never be re-journaled: the
    /// published mapping is append-only within a migrator's lifetime).
    /// An entry overlapping a still-unmigrated pending redirect
    /// *cancels* the older one: its intent never commits, so recovery
    /// discards it.
    pub fn add_pending(&mut self, entries: &[DrtEntry]) -> Result<(), PersistError> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        for entry in entries {
            let already_redirected = self
                .published
                .translate(entry.o_file, entry.o_offset, entry.length)
                .iter()
                .any(|p| p.file != entry.o_file);
            if already_redirected {
                continue;
            }
            self.cancel_overlapping(entry.o_file.0, entry.o_offset, entry.length);
            let batch = self.next_batch;
            self.next_batch += 1;
            self.store.journal_batch(batch, std::slice::from_ref(entry))?;
            let idx = self.pending.len();
            self.pending.push(PendingRedirect {
                entry: *entry,
                batch,
                migrated: false,
                cancelled: false,
            });
            self.index
                .entry(entry.o_file.0)
                .or_default()
                .insert(entry.o_offset, (entry.length, idx));
        }
        Ok(())
    }

    /// The live mapping: base plus every migrated entry.
    pub fn published(&self) -> &Drt {
        &self.published
    }

    /// Redirects still waiting for their first access.
    pub fn pending_len(&self) -> usize {
        self.pending.iter().filter(|p| !p.migrated && !p.cancelled).count()
    }

    /// Extents migrated by an access (not by [`LazyMigrator::drain`]).
    pub fn on_access_migrations(&self) -> usize {
        self.on_access_migrations
    }

    /// Bytes moved so far (on-access and drained).
    pub fn migrated_bytes(&self) -> u64 {
        self.migrated_bytes
    }

    /// Surface a store error stashed during replay (the [`Resolver`]
    /// interface cannot fail, so a mid-replay kill parks here).
    pub fn check(&mut self) -> Result<(), PersistError> {
        match self.err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Migrate every remaining pending redirect (end-of-run drain), so
    /// the final mapping matches what eager migration would have
    /// produced. Returns the bytes moved and the modeled copy time.
    pub fn drain(&mut self) -> Result<(u64, SimDuration), PersistError> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        let mut bytes = 0u64;
        let mut time = SimDuration::ZERO;
        for i in 0..self.pending.len() {
            if self.pending[i].migrated || self.pending[i].cancelled {
                continue;
            }
            let p = self.pending[i];
            self.store.commit_batch(p.batch)?;
            self.publish(i);
            bytes += p.entry.length;
            time += self.copy_cost(p.entry.length);
        }
        self.index.clear();
        Ok((bytes, time))
    }

    /// Modeled service time of copying `len` bytes old-home → new-home.
    fn copy_cost(&self, len: u64) -> SimDuration {
        self.copy_latency
            + SimDuration::from_nanos((len as f64 * self.copy_secs_per_byte * 1e9) as u64)
    }

    /// Drop unmigrated pendings overlapping `[offset, offset + len)` of
    /// file `file` (their journal intents stay uncommitted and are
    /// discarded by recovery / retired with the journal).
    fn cancel_overlapping(&mut self, file: u32, offset: u64, len: u64) {
        let Some(map) = self.index.get_mut(&file) else {
            return;
        };
        let end = offset + len;
        let hits: Vec<(u64, usize)> = map
            .range(..end)
            .rev()
            .take_while(|(&off, &(elen, _))| off + elen > offset)
            .map(|(&off, &(_, idx))| (off, idx))
            .collect();
        for (off, idx) in hits {
            map.remove(&off);
            self.pending[idx].cancelled = true;
        }
    }

    /// Mark pending `i` migrated and publish its entry into the live
    /// mapping.
    fn publish(&mut self, i: usize) {
        self.pending[i].migrated = true;
        let entry = self.pending[i].entry;
        let inserted = self.published.insert(entry);
        debug_assert!(inserted, "pending redirects never overlap the published mapping");
        if let Some(map) = self.index.get_mut(&entry.o_file.0) {
            map.remove(&entry.o_offset);
        }
    }

    /// First-access hook: migrate every unmigrated pending redirect
    /// overlapping the accessed range, returning the copy time charged
    /// to this request.
    fn touch(&mut self, file: u32, offset: u64, len: u64) -> SimDuration {
        let mut charged = SimDuration::ZERO;
        let end = offset + len;
        let hits: Vec<usize> = match self.index.get(&file) {
            None => return charged,
            Some(map) => map
                .range(..end)
                .rev()
                .take_while(|(&off, &(elen, _))| off + elen > offset)
                .map(|(_, &(_, idx))| idx)
                .collect(),
        };
        for i in hits {
            let p = self.pending[i];
            match self.store.commit_batch(p.batch) {
                Ok(()) => {
                    self.publish(i);
                    self.on_access_migrations += 1;
                    self.migrated_bytes += p.entry.length;
                    charged += self.copy_cost(p.entry.length);
                }
                Err(e) => {
                    self.err = Some(e);
                    break;
                }
            }
        }
        charged
    }
}

impl Resolver for LazyMigrator<'_> {
    fn resolve(&mut self, rec: &TraceRecord) -> Resolution {
        let mut overhead = self.lookup;
        if self.err.is_none() {
            overhead += self.touch(rec.file.0, rec.offset, rec.len);
        }
        Resolution {
            extents: self.published.translate(rec.file, rec.offset, rec.len),
            overhead,
        }
    }
}

/// Lazy counterpart of the eager journaled migration flow: commit the
/// base mapping, journal every pending entry up front (write-ahead),
/// replay `trace` through the on-access migrator, drain the untouched
/// remainder, publish the full mapping and retire the journal.
///
/// After a full replay + drain the published DRT is **bit-identical**
/// to what the eager [`migrate_durable`] flow produces for the same
/// entries (the `lazy_drain_matches_eager_migration` property test),
/// and a crash at any commit boundary recovers to a committed
/// generation (the lazy kill-matrix test).
#[allow(clippy::too_many_arguments)]
pub fn run_lazy_durable(
    cluster_cfg: &ClusterConfig,
    layout_book: &[(iotrace::FileId, pfs_sim::LayoutSpec)],
    base: &Drt,
    rst: &Rst,
    to_migrate: &[DrtEntry],
    trace: &Trace,
    lookup: SimDuration,
    store: &PipelineStore,
) -> Result<(Drt, ReplayReport), PersistError> {
    store.save_tables(base, rst)?;
    let mut migrator = LazyMigrator::new(store, base.clone(), cluster_cfg, lookup);
    migrator.add_pending(to_migrate)?;
    let mut cluster = Cluster::new(cluster_cfg.clone());
    for (file, layout) in layout_book {
        cluster.mds_mut().set_layout(*file, layout.clone());
    }
    let report = ReplaySession::new()
        .run(ReplayInput::trace(&mut cluster, trace, &mut migrator), CoreSel::Auto)
        .expect("unscheduled fault-free replay cannot fail");
    migrator.check()?;
    migrator.drain()?;
    let published = migrator.published().clone();
    store.save_tables(&published, rst)?;
    store.clear_journal()?;
    Ok((published, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::recover;
    use crate::rssd::StripePair;
    use crate::schemes::{Evaluation, Scheme};
    use iotrace::gen::ior::{generate as gen_ior, IorConfig};
    use iotrace::gen::lanl::{generate as gen_lanl, LanlConfig};
    use iotrace::FileId;

    fn ctx(cfg: &ClusterConfig) -> PlannerContext {
        PlannerContext::for_cluster(cfg)
    }

    #[test]
    fn stable_pattern_plans_once_and_never_migrates_cold_data() {
        let cluster = ClusterConfig::paper_default();
        let c = ctx(&cluster);
        let trace = gen_lanl(&LanlConfig::paper(24, IoOp::Write));
        let rep = run_dynamic(&cluster, &trace, &c, &DynamicConfig::default());
        assert_eq!(rep.replans, 1, "stable workload should plan exactly once");
        // Every LANL extent is written exactly once: there is no evidence
        // any will be touched again, so nothing is migrated — later
        // writes are placed online instead.
        assert_eq!(rep.migrated_bytes, 0);
        assert_eq!(rep.total_bytes, trace.total_bytes());
    }

    #[test]
    fn dynamic_beats_def_and_trails_oracle() {
        let cluster = ClusterConfig::paper_default();
        let c = ctx(&cluster);
        let trace = gen_lanl(&LanlConfig::paper(48, IoOp::Write));
        let dynamic = run_dynamic(&cluster, &trace, &c, &DynamicConfig::default());
        let def = Evaluation::of(Scheme::Def, &trace, &cluster).context(&c).report();
        let oracle = Evaluation::of(Scheme::Mha, &trace, &cluster).context(&c).report();
        assert!(
            dynamic.bandwidth_mbps() > def.bandwidth_mbps(),
            "dynamic {} <= DEF {}",
            dynamic.bandwidth_mbps(),
            def.bandwidth_mbps()
        );
        assert!(
            dynamic.bandwidth_mbps() <= oracle.bandwidth_mbps() * 1.02,
            "dynamic {} cannot beat the oracle {}",
            dynamic.bandwidth_mbps(),
            oracle.bandwidth_mbps()
        );
    }

    #[test]
    fn drifting_pattern_replans() {
        // First half: LANL writes; second half: large uniform IOR reads.
        let cluster = ClusterConfig::paper_default();
        let c = ctx(&cluster);
        let mut trace = gen_lanl(&LanlConfig::paper(16, IoOp::Write));
        let mut ior_cfg = IorConfig::default_run(IoOp::Read);
        ior_cfg.size_mix = vec![1 << 20];
        ior_cfg.reqs_per_proc = 48;
        trace.extend_with(&gen_ior(&ior_cfg));
        let rep = run_dynamic(&cluster, &trace, &c, &DynamicConfig::default());
        assert!(rep.replans >= 2, "pattern change must trigger a re-plan: {rep:?}");
    }

    #[test]
    fn epochs_partition_the_trace() {
        let trace = gen_lanl(&LanlConfig::paper(10, IoOp::Write));
        let epochs = split_epochs(&trace, 7);
        let total: usize = epochs.iter().map(Trace::len).sum();
        assert_eq!(total, trace.len());
        assert!(epochs.len() >= 2);
    }

    #[test]
    fn drift_detector_is_symmetric_and_thresholded() {
        let trace = gen_lanl(&LanlConfig::paper(4, IoOp::Write));
        let s = TraceStats::of(&trace);
        assert!(!drifted(&s, &s, 0.25), "identical stats never drift");
    }

    #[test]
    fn migration_moves_hot_data_and_accounts_time() {
        // Two identical LANL write passes make every extent hot (accessed
        // twice); the trailing large-read phase triggers a drift re-plan,
        // which must migrate the hot extents and charge the time.
        let cluster = ClusterConfig::paper_default();
        let c = ctx(&cluster);
        let mut trace = gen_lanl(&LanlConfig::paper(16, IoOp::Write));
        trace.extend_with(&gen_lanl(&LanlConfig::paper(16, IoOp::Write)));
        let mut ior_cfg = IorConfig::default_run(IoOp::Read);
        ior_cfg.size_mix = vec![1 << 20];
        ior_cfg.reqs_per_proc = 32;
        trace.extend_with(&gen_ior(&ior_cfg));
        let rep = run_dynamic(&cluster, &trace, &c, &DynamicConfig::default());
        assert!(rep.replans >= 2, "drift must replan: {}", rep.replans);
        assert!(rep.migrated_bytes > 0, "hot extents must migrate");
        let mig_time: SimDuration = rep.epochs.iter().map(|e| e.migration_time).sum();
        assert!(!mig_time.is_zero());
        let app_time: SimDuration = rep.epochs.iter().map(|e| e.io_time).sum();
        assert_eq!((app_time + mig_time).as_nanos(), rep.total_time.as_nanos());
        assert_eq!(rep.total_bytes, trace.total_bytes());
    }

    // ------------------------------------------------ durable mode --

    fn tmp_store(tag: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("mha-dyn-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    /// Base mapping: six extents of file 0 already living in region
    /// file 70 000.
    fn base_tables() -> (Drt, Rst) {
        let mut drt = Drt::new();
        for i in 0..6u64 {
            assert!(drt.insert(DrtEntry {
                o_file: FileId(0),
                o_offset: i * 8192,
                r_file: FileId(70_000),
                r_offset: i * 4096,
                length: 4096,
            }));
        }
        let mut rst = Rst::new();
        rst.set(FileId(70_000), StripePair { h: 0, s: 64 << 10 });
        rst.set(FileId(70_001), StripePair { h: 0, s: 128 << 10 });
        (drt, rst)
    }

    /// Nine further extents of file 0 that migration moves into region
    /// file 70 001.
    fn to_migrate_entries() -> Vec<DrtEntry> {
        (0..9u64)
            .map(|i| DrtEntry {
                o_file: FileId(0),
                o_offset: (1 << 20) + i * 8192,
                r_file: FileId(70_001),
                r_offset: i * 4096,
                length: 4096,
            })
            .collect()
    }

    /// A plan with no layouts: the MDS default layout serves the
    /// migration traffic, which is all `migrate_durable` needs.
    fn empty_plan() -> Plan {
        Plan {
            scheme: Scheme::Mha,
            layouts: Vec::new(),
            resolver: PlanResolver::Identity,
            rst: Rst::new(),
            regions: Vec::new(),
        }
    }

    /// The durable migration flow exactly as `run_dynamic_inner` drives
    /// it: commit the base, move in journaled batches, publish, retire.
    fn run_flow(
        store: &PipelineStore,
        cluster_cfg: &ClusterConfig,
        base: &Drt,
        rst: &Rst,
        to_migrate: &[DrtEntry],
        cfg: &DynamicConfig,
    ) -> Result<Drt, PersistError> {
        store.save_tables(base, rst)?;
        let mut published = base.clone();
        migrate_durable(
            cluster_cfg,
            None,
            &[],
            &empty_plan(),
            to_migrate,
            cfg,
            store,
            &mut published,
        )?;
        store.save_tables(&published, rst)?;
        store.clear_journal()?;
        Ok(published)
    }

    /// The acceptance property: kill the process at *every* commit
    /// boundary of the migration flow, recover, and check that the DRT
    /// never resolves to unmigrated data — each entry is either a base
    /// entry or belongs to a batch whose journal commit record survived.
    #[test]
    fn kill_matrix_over_journaled_migration_recovers_consistently() {
        let cluster = ClusterConfig::paper_default();
        let cfg = DynamicConfig { migration_batch: 3, ..DynamicConfig::default() };
        let (base, rst) = base_tables();
        let to_migrate = to_migrate_entries();

        // Recording run: measure the matrix width.
        let path = tmp_store("matrix-record");
        let boundaries = {
            let store = PipelineStore::open(&path).expect("open");
            run_flow(&store, &cluster, &base, &rst, &to_migrate, &cfg).expect("flow");
            store.kill_switch().boundaries()
        };
        let _ = std::fs::remove_file(&path);
        assert!(boundaries > 30, "expected a wide matrix, got {boundaries} boundaries");

        for k in 0..boundaries {
            let path = tmp_store(&format!("matrix-{k}"));
            {
                let store = PipelineStore::open(&path).expect("open");
                store.kill_switch().arm(k);
                match run_flow(&store, &cluster, &base, &rst, &to_migrate, &cfg) {
                    Err(PersistError::Killed(_)) => {}
                    other => panic!("boundary {k}: expected Killed, got {other:?}"),
                }
            }
            // "Restart": reopen, read the surviving journal, recover.
            let store = PipelineStore::open(&path).expect("reopen");
            let journal = store.journal().expect("journal");
            let committed: std::collections::HashSet<(u32, u64)> = journal
                .iter()
                .filter(|b| b.committed)
                .flat_map(|b| b.entries.iter().map(|e| (e.o_file.0, e.o_offset)))
                .collect();
            let out = recover(&store).expect("recover");
            match &out.tables {
                None => assert!(
                    journal.is_empty(),
                    "boundary {k}: the base commits before any journaling"
                ),
                Some((drt, got_rst)) => {
                    assert_eq!(*got_rst, rst, "boundary {k}: RST must survive");
                    for e in drt.entries() {
                        let in_base = base.lookup_exact(e.o_file, e.o_offset, e.length)
                            == Some((e.r_file, e.r_offset));
                        assert!(
                            in_base || committed.contains(&(e.o_file.0, e.o_offset)),
                            "boundary {k}: {e:?} resolves to unmigrated data"
                        );
                    }
                    for b in journal.iter().filter(|b| b.committed) {
                        for e in &b.entries {
                            assert_eq!(
                                drt.lookup_exact(e.o_file, e.o_offset, e.length),
                                Some((e.r_file, e.r_offset)),
                                "boundary {k}: committed batch entry lost"
                            );
                        }
                    }
                    for e in base.entries() {
                        assert_eq!(
                            drt.lookup_exact(e.o_file, e.o_offset, e.length),
                            Some((e.r_file, e.r_offset)),
                            "boundary {k}: base entry lost"
                        );
                    }
                }
            }
            // Recovery is idempotent ...
            let again = recover(&store).expect("recover again");
            assert_eq!(again.rolled_forward, 0, "boundary {k}: second recovery must be a no-op");
            // ... and the retried flow completes and publishes everything.
            let published =
                run_flow(&store, &cluster, &base, &rst, &to_migrate, &cfg).expect("resume");
            let (final_drt, final_rst) =
                store.load_tables().expect("load").expect("committed");
            assert_eq!(final_drt, published, "boundary {k}");
            assert_eq!(final_rst, rst, "boundary {k}");
            assert_eq!(final_drt.len(), base.len() + to_migrate.len(), "boundary {k}");
            let _ = std::fs::remove_file(&path);
        }
    }

    // ------------------------------------------- lazy migration --

    /// One read per pending extent, each in its own phase — a replay
    /// that touches (and therefore lazily migrates) every entry.
    fn access_trace(entries: &[DrtEntry]) -> Trace {
        Trace::from_records(
            entries
                .iter()
                .enumerate()
                .map(|(i, e)| TraceRecord {
                    pid: 1,
                    rank: Rank(i as u32 % 4),
                    file: e.o_file,
                    op: IoOp::Read,
                    offset: e.o_offset,
                    len: e.length,
                    ts: SimTime::ZERO + SimDuration::from_millis(10) * i as u64,
                    phase: i as u32,
                })
                .collect(),
        )
    }

    /// The acceptance property: a full replay drains every pending
    /// redirect, and the resulting DRT is bit-identical to what the
    /// eager journaled flow publishes for the same plan — on disk too.
    #[test]
    fn lazy_drain_matches_eager_migration() {
        let cluster = ClusterConfig::paper_default();
        let cfg = DynamicConfig { migration_batch: 3, ..DynamicConfig::default() };
        let (base, rst) = base_tables();
        let to_migrate = to_migrate_entries();

        let eager_path = tmp_store("lazy-eager");
        let eager = {
            let store = PipelineStore::open(&eager_path).expect("open");
            let published =
                run_flow(&store, &cluster, &base, &rst, &to_migrate, &cfg).expect("eager");
            let on_disk = store.load_tables().expect("load").expect("committed");
            assert_eq!(on_disk.0, published);
            published
        };
        let _ = std::fs::remove_file(&eager_path);

        let lazy_path = tmp_store("lazy-lazy");
        let store = PipelineStore::open(&lazy_path).expect("open");
        let trace = access_trace(&to_migrate);
        let (lazy, report) = run_lazy_durable(
            &cluster,
            &[],
            &base,
            &rst,
            &to_migrate,
            &trace,
            SimDuration::from_micros(5),
            &store,
        )
        .expect("lazy");
        assert_eq!(lazy, eager, "drained lazy mapping == eager mapping");
        let (disk_drt, disk_rst) = store.load_tables().expect("load").expect("committed");
        assert_eq!(disk_drt, eager, "on-disk mapping matches too");
        assert_eq!(disk_rst, rst);
        assert!(store.journal().expect("journal").is_empty(), "journal retired");
        // Every access after the first resolves to the new home, and the
        // copies were charged to request service time.
        assert_eq!(report.requests, to_migrate.len());
        assert!(
            report.resolve_overhead > SimDuration::from_micros(5) * to_migrate.len() as u64,
            "copy time must be charged on top of lookups: {:?}",
            report.resolve_overhead
        );
        let _ = std::fs::remove_file(&lazy_path);
    }

    #[test]
    fn lazy_migration_moves_extents_on_first_access_only() {
        let cluster = ClusterConfig::paper_default();
        let (base, rst) = base_tables();
        let to_migrate = to_migrate_entries();
        let path = tmp_store("lazy-partial");
        let store = PipelineStore::open(&path).expect("open");
        store.save_tables(&base, &rst).expect("save base");
        let mut mig =
            LazyMigrator::new(&store, base.clone(), &cluster, SimDuration::from_micros(5));
        mig.add_pending(&to_migrate).expect("journal intents");
        assert_eq!(mig.pending_len(), to_migrate.len());

        // Replay touches only the first four extents.
        let touched = &to_migrate[..4];
        let mut cluster_sim = Cluster::new(cluster.clone());
        ReplaySession::new()
            .run(ReplayInput::trace(&mut cluster_sim, &access_trace(touched), &mut mig), CoreSel::Auto)
            .expect("replay");
        mig.check().expect("no store error");
        assert_eq!(mig.on_access_migrations(), 4);
        assert_eq!(mig.pending_len(), to_migrate.len() - 4);
        // Touched extents are committed and published; untouched ones
        // still resolve to their old home and stay uncommitted.
        let journal = store.journal().expect("journal");
        for p in journal {
            let touched_entry = touched.iter().any(|e| e.o_offset == p.entries[0].o_offset);
            assert_eq!(p.committed, touched_entry, "batch {}", p.batch);
        }
        for e in touched {
            assert_eq!(
                mig.published().lookup_exact(e.o_file, e.o_offset, e.length),
                Some((e.r_file, e.r_offset))
            );
        }
        for e in &to_migrate[4..] {
            assert_eq!(mig.published().lookup_exact(e.o_file, e.o_offset, e.length), None);
        }
        // Drain completes the generation.
        let (bytes, _) = mig.drain().expect("drain");
        assert_eq!(bytes, to_migrate[4..].iter().map(|e| e.length).sum::<u64>());
        assert_eq!(mig.pending_len(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn superseded_pending_redirects_are_cancelled_not_committed() {
        let cluster = ClusterConfig::paper_default();
        let (base, rst) = base_tables();
        let path = tmp_store("lazy-cancel");
        let store = PipelineStore::open(&path).expect("open");
        store.save_tables(&base, &rst).expect("save base");
        let mut mig =
            LazyMigrator::new(&store, base.clone(), &cluster, SimDuration::from_micros(5));
        let first = to_migrate_entries();
        mig.add_pending(&first).expect("journal first plan");
        // A newer plan re-homes the same extents to region file 70 002.
        let second: Vec<DrtEntry> = first
            .iter()
            .map(|e| DrtEntry { r_file: FileId(70_002), r_offset: e.o_offset, ..*e })
            .collect();
        mig.add_pending(&second).expect("journal second plan");
        assert_eq!(mig.pending_len(), second.len(), "old redirects cancelled");
        let (bytes, _) = mig.drain().expect("drain");
        assert_eq!(bytes, second.iter().map(|e| e.length).sum::<u64>());
        for e in &second {
            assert_eq!(
                mig.published().lookup_exact(e.o_file, e.o_offset, e.length),
                Some((e.r_file, e.r_offset)),
                "the newer plan's mapping wins"
            );
        }
        // Only the second plan's batches ever commit.
        let journal = store.journal().expect("journal");
        let (committed, discarded): (Vec<_>, Vec<_>) =
            journal.iter().partition(|b| b.committed);
        assert_eq!(committed.len(), second.len());
        assert_eq!(discarded.len(), first.len());
        assert!(committed.iter().all(|b| b.entries[0].r_file == FileId(70_002)));
        let _ = std::fs::remove_file(&path);
    }

    /// Satellite: the lazy-migration kill matrix. Crash at every commit
    /// boundary of the lazy flow — including between a first-access
    /// copy and its `migc:` record — and check that recovery lands on a
    /// committed generation, never exposes a half-migrated region, and
    /// that the retried flow replays idempotently to the full mapping.
    #[test]
    fn kill_matrix_over_lazy_migration_recovers_consistently() {
        let cluster = ClusterConfig::paper_default();
        let (base, rst) = base_tables();
        let to_migrate = to_migrate_entries();
        let lookup = SimDuration::from_micros(5);
        let trace = access_trace(&to_migrate);

        let run = |store: &PipelineStore| {
            run_lazy_durable(&cluster, &[], &base, &rst, &to_migrate, &trace, lookup, store)
        };

        let path = tmp_store("lazy-matrix-record");
        let boundaries = {
            let store = PipelineStore::open(&path).expect("open");
            run(&store).expect("flow");
            store.kill_switch().boundaries()
        };
        let _ = std::fs::remove_file(&path);
        assert!(boundaries > 30, "expected a wide matrix, got {boundaries} boundaries");

        for k in 0..boundaries {
            let path = tmp_store(&format!("lazy-matrix-{k}"));
            {
                let store = PipelineStore::open(&path).expect("open");
                store.kill_switch().arm(k);
                match run(&store) {
                    Err(PersistError::Killed(_)) => {}
                    other => panic!("boundary {k}: expected Killed, got {other:?}"),
                }
            }
            let store = PipelineStore::open(&path).expect("reopen");
            let journal = store.journal().expect("journal");
            let committed: std::collections::HashSet<(u32, u64)> = journal
                .iter()
                .filter(|b| b.committed)
                .flat_map(|b| b.entries.iter().map(|e| (e.o_file.0, e.o_offset)))
                .collect();
            let out = recover(&store).expect("recover");
            match &out.tables {
                None => assert!(
                    journal.is_empty(),
                    "boundary {k}: the base commits before any journaling"
                ),
                Some((drt, got_rst)) => {
                    assert_eq!(*got_rst, rst, "boundary {k}: RST must survive");
                    for e in drt.entries() {
                        let in_base = base.lookup_exact(e.o_file, e.o_offset, e.length)
                            == Some((e.r_file, e.r_offset));
                        assert!(
                            in_base || committed.contains(&(e.o_file.0, e.o_offset)),
                            "boundary {k}: {e:?} resolves to unmigrated data"
                        );
                    }
                    // No half-migrated region: each pending extent is
                    // atomically old-home or new-home.
                    for e in &to_migrate {
                        let pieces = drt.translate(e.o_file, e.o_offset, e.length);
                        assert_eq!(pieces.len(), 1, "boundary {k}: extent split {pieces:?}");
                        let p = &pieces[0];
                        let old = (p.file, p.offset) == (e.o_file, e.o_offset);
                        let new = (p.file, p.offset) == (e.r_file, e.r_offset);
                        assert!(
                            old || new,
                            "boundary {k}: {e:?} resolves to a third location {p:?}"
                        );
                        assert_eq!(p.len, e.length, "boundary {k}");
                    }
                    for b in journal.iter().filter(|b| b.committed) {
                        for e in &b.entries {
                            assert_eq!(
                                drt.lookup_exact(e.o_file, e.o_offset, e.length),
                                Some((e.r_file, e.r_offset)),
                                "boundary {k}: committed batch entry lost"
                            );
                        }
                    }
                }
            }
            let again = recover(&store).expect("recover again");
            assert_eq!(again.rolled_forward, 0, "boundary {k}: second recovery must be a no-op");
            // The retried flow replays idempotently to the full mapping.
            let (published, _) = run(&store).expect("resume");
            let (final_drt, final_rst) = store.load_tables().expect("load").expect("committed");
            assert_eq!(final_drt, published, "boundary {k}");
            assert_eq!(final_rst, rst, "boundary {k}");
            assert_eq!(final_drt.len(), base.len() + to_migrate.len(), "boundary {k}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn durable_run_persists_tables_and_retires_the_journal() {
        let cluster = ClusterConfig::paper_default();
        let c = ctx(&cluster);
        // The migration workload: two identical LANL passes make extents
        // hot, the trailing large-read phase forces a drift re-plan.
        let mut trace = gen_lanl(&LanlConfig::paper(16, IoOp::Write));
        trace.extend_with(&gen_lanl(&LanlConfig::paper(16, IoOp::Write)));
        let mut ior_cfg = IorConfig::default_run(IoOp::Read);
        ior_cfg.size_mix = vec![1 << 20];
        ior_cfg.reqs_per_proc = 32;
        trace.extend_with(&gen_ior(&ior_cfg));
        let path = tmp_store("durable-smoke");
        let store = PipelineStore::open(&path).expect("open");
        let rep = run_dynamic_durable(&cluster, &trace, &c, &DynamicConfig::default(), &store)
            .expect("durable run");
        assert!(rep.replans >= 2, "drift must replan: {}", rep.replans);
        assert!(rep.migrated_bytes > 0, "hot extents must migrate");
        assert_eq!(rep.total_bytes, trace.total_bytes());
        // The journal is retired and the final mapping is committed.
        assert!(store.journal().expect("journal").is_empty());
        let (drt, rst) = store.load_tables().expect("load").expect("committed");
        assert!(!drt.is_empty(), "the adopted mapping must persist");
        assert!(!rst.is_empty(), "region stripe pairs must persist");
        // Recovery on a cleanly-finished store is a no-op.
        let out = recover(&store).expect("recover");
        assert_eq!(out.rolled_forward, 0);
        assert_eq!(out.tables.expect("tables").0, drt);
        let _ = std::fs::remove_file(&path);
    }
}
