//! Per-tenant online pipeline behind the layout service.
//!
//! [`TenantPipeline`] packages the crate's online machinery — an
//! [`OnlinePlanner`] and a [`LazyMigrator`] over a shared
//! [`PipelineStore`] — as one [`pfs_sim::TenantRuntime`], so a
//! [`pfs_sim::LayoutService`] can run many tenants against one cluster
//! while each keeps its own plan generations, redirect table and
//! migration journal:
//!
//! * **Namespaced region files.** The planner's region-file allocator
//!   is re-based into the tenant's [`iotrace::FileId`] namespace, so
//!   every region file a replan mints — and every DRT entry and MDS
//!   layout referring to it — carries the tenant's high bits and lands
//!   in the tenant's MDS shard.
//! * **Namespaced durability.** The migrator journals and the pipeline
//!   commits plan generations through
//!   [`PipelineStore::tenant`](crate::persist::PipelineStore::tenant),
//!   so co-tenants on one write-ahead log recover independently via
//!   [`crate::persist::recover_tenant`].
//! * **Job-as-window.** Each completed job is treated as one profiling
//!   window: quiet jobs (signature within the drift threshold) cost
//!   one comparison, drifted jobs replan incrementally and hand the
//!   new plan's extents to the lazy migrator — copies then happen on
//!   first access during later jobs.

use crate::dynamic::LazyMigrator;
use crate::online::{OnlineConfig, OnlinePlanner, Replan, WindowSig};
use crate::persist::{PersistError, PipelineStore, TenantStore};
use crate::region::Drt;
use crate::schemes::{PlanResolver, PlannerContext};
use iotrace::{FileId, TenantId, Trace, TraceStats};
use pfs_sim::{ClusterConfig, LayoutSpec, Resolver, TenantRuntime};

/// The crate's online planning + lazy migration stack, packaged as a
/// [`TenantRuntime`] for [`pfs_sim::LayoutService`]. See the module
/// docs for the namespacing and durability contract.
pub struct TenantPipeline<'a> {
    store: TenantStore<'a>,
    planner: OnlinePlanner,
    migrator: LazyMigrator<'a>,
    err: Option<PersistError>,
}

impl<'a> TenantPipeline<'a> {
    /// A pipeline for `tenant` over the shared `store`, planning for
    /// `cluster` with the default context. The planner's region-file
    /// allocator is re-based into the tenant's namespace.
    pub fn new(
        store: &'a PipelineStore,
        tenant: TenantId,
        cluster: &ClusterConfig,
        cfg: OnlineConfig,
    ) -> Self {
        let mut ctx = PlannerContext::for_cluster(cluster);
        ctx.region_file_base = FileId::with_tenant(tenant, FileId(ctx.region_file_base)).0;
        let lookup = ctx.lookup_cost;
        TenantPipeline {
            store: store.tenant(tenant),
            planner: OnlinePlanner::new(ctx, cfg),
            migrator: LazyMigrator::for_tenant(store, tenant, Drt::new(), cluster, lookup),
            err: None,
        }
    }

    /// The tenant this pipeline plans for.
    pub fn tenant(&self) -> TenantId {
        self.store.tenant()
    }

    /// The online planner (for its replan counters).
    pub fn planner(&self) -> &OnlinePlanner {
        &self.planner
    }

    /// The lazy migrator (for its published table and copy counters).
    pub fn migrator(&self) -> &LazyMigrator<'a> {
        &self.migrator
    }

    /// Surface any persistence error swallowed by the infallible
    /// [`TenantRuntime`] hooks. A failed pipeline stops planning and
    /// migrating (jobs still replay at their installed layouts) until
    /// the error is observed here.
    pub fn check(&mut self) -> Result<(), PersistError> {
        match self.err.take() {
            Some(e) => Err(e),
            None => self.migrator.check(),
        }
    }
}

impl TenantRuntime for TenantPipeline<'_> {
    fn resolver(&mut self) -> &mut dyn Resolver {
        &mut self.migrator
    }

    fn after_job(&mut self, trace: &Trace) -> Vec<(FileId, LayoutSpec)> {
        if self.err.is_some() {
            return Vec::new();
        }
        let sig = WindowSig::from(&TraceStats::of(trace));
        match self.planner.observe(trace, sig) {
            Replan::Quiet => Vec::new(),
            Replan::Plan { plan, .. } => {
                // Commit the generation (published mapping so far + the
                // new stripe table) before journaling its redirects:
                // recovery must never roll a journal entry forward onto
                // tables that were lost.
                if let Err(e) = self.store.save_tables(self.migrator.published(), &plan.rst) {
                    self.err = Some(e);
                    return Vec::new();
                }
                let PlanResolver::Drt(drt) = &plan.resolver else {
                    return plan.layouts;
                };
                if let Err(e) = self.migrator.add_pending(&drt.entries()) {
                    self.err = Some(e);
                    return Vec::new();
                }
                plan.layouts
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::recover_tenant;
    use iotrace::gen::skewed::{self, SkewedConfig};
    use pfs_sim::{LayoutService, ServiceConfig};
    use storage_model::IoOp;

    fn store_at(tag: &str) -> PipelineStore {
        let p = std::env::temp_dir().join(format!("mha-tenant-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        PipelineStore::open(p).unwrap()
    }

    fn skewed_trace(request_size: u64, seed: u64) -> Trace {
        let mut cfg = SkewedConfig::default_run(IoOp::Read);
        cfg.procs = 8;
        cfg.phases = 8;
        cfg.request_size = request_size;
        cfg.seed = seed;
        skewed::generate(&cfg)
    }

    #[test]
    fn co_tenant_pipelines_keep_namespaces_and_generations_apart() {
        let store = store_at("co-tenant");
        let cluster_cfg = ClusterConfig::paper_default();
        let mut cluster = pfs_sim::Cluster::new(cluster_cfg.clone());
        let report = {
            let mut svc = LayoutService::new(&mut cluster, ServiceConfig::new(7));
            for t in [1u32, 2] {
                let pipe = TenantPipeline::new(
                    &store,
                    TenantId(t),
                    &cluster_cfg,
                    OnlineConfig::default(),
                );
                svc.add_tenant(TenantId(t), Box::new(pipe));
                // Drifted second job forces a second generation.
                svc.submit(TenantId(t), skewed_trace(16 << 10, u64::from(t)));
                svc.submit(TenantId(t), skewed_trace(512 << 10, u64::from(t) + 10));
            }
            svc.run().unwrap()
        };
        assert_eq!(report.jobs.len(), 4);

        // Each tenant committed its own generations on the shared WAL.
        for t in [1u32, 2] {
            let ts = store.tenant(TenantId(t));
            let gen = ts.committed_generation().unwrap();
            assert!(gen.is_some(), "tenant {t} never committed a generation");
            let (_, rst) = ts.load_tables().unwrap().expect("committed tables load");
            for (file, _) in rst.iter() {
                assert_eq!(file.tenant(), TenantId(t), "foreign file {file:?} in tenant {t}'s RST");
            }
            let outcome = recover_tenant(&store, TenantId(t)).unwrap();
            assert!(outcome.tables.is_some(), "tenant {t} must recover committed tables");
        }
        // A tenant never planned under never shows a generation.
        assert_eq!(store.tenant(TenantId(3)).committed_generation().unwrap(), None);
    }

    #[test]
    fn region_layouts_land_in_the_tenants_mds_shard() {
        let store = store_at("mds-shard");
        let cluster_cfg = ClusterConfig::paper_default();
        let mut cluster = pfs_sim::Cluster::new(cluster_cfg.clone());
        {
            let mut svc = LayoutService::new(&mut cluster, ServiceConfig::new(11));
            let pipe =
                TenantPipeline::new(&store, TenantId(5), &cluster_cfg, OnlineConfig::default());
            svc.add_tenant(TenantId(5), Box::new(pipe));
            svc.submit(TenantId(5), skewed_trace(64 << 10, 1));
            svc.submit(TenantId(5), skewed_trace(64 << 10, 2));
            svc.run().unwrap();
        }
        let region_files: Vec<FileId> = cluster
            .mds()
            .tenant_layouts(TenantId(5))
            .map(|(f, _)| f)
            .filter(|f| f.local().0 >= 1 << 20)
            .collect();
        assert!(!region_files.is_empty(), "first job must plan and install region layouts");
        for f in &region_files {
            assert_eq!(f.tenant(), TenantId(5));
        }
        assert_eq!(cluster.mds().tenant_layouts(TenantId(0)).count(), 0);
    }

    #[test]
    fn failed_store_parks_the_pipeline_instead_of_panicking() {
        let store = store_at("kill");
        let cluster_cfg = ClusterConfig::paper_default();
        let mut pipe =
            TenantPipeline::new(&store, TenantId(1), &cluster_cfg, OnlineConfig::default());
        store.kill_switch().arm(1); // next store boundary dies
        let t = skewed_trace(64 << 10, 3);
        let retagged = Trace::from_records(
            t.records()
                .iter()
                .map(|r| iotrace::TraceRecord {
                    file: FileId::with_tenant(TenantId(1), r.file),
                    ..*r
                })
                .collect(),
        );
        let updates = pipe.after_job(&retagged);
        assert!(updates.is_empty(), "a dead store must not publish layouts");
        assert!(pipe.check().is_err(), "the swallowed error must surface");
        assert!(pipe.check().is_ok(), "check() drains the error once");
    }
}

