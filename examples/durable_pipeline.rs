//! Durable pipeline: plan once, persist the planner output through the
//! crash-consistent [`PipelineStore`], simulate a process restart, and
//! replay from the reloaded plan — verifying the round trip reproduces
//! the original run bit for bit.
//!
//! Also demonstrates the recovery entry point: `recover` inspects the
//! store on startup, rolls forward any migration batches whose journal
//! records committed before a crash, and discards the rest.
//!
//! ```text
//! cargo run --release --example durable_pipeline
//! ```

use mha::prelude::*;

fn replay_under(plan: &Plan, trace: &Trace, cluster: &ClusterConfig) -> pfs_sim::ReplayReport {
    let mut c = Cluster::new(cluster.clone());
    apply_plan(&mut c, plan);
    let mut resolver = plan.make_resolver(SimDuration::from_micros(5));
    ReplaySession::new()
        .run(ReplayInput::trace(&mut c, trace, resolver.as_mut()), CoreSel::Auto)
        .expect("fault-free replay cannot fail")
}

fn main() {
    let cluster = ClusterConfig::paper_default();
    let trace = mha::iotrace::gen::lanl::generate(
        &mha::iotrace::gen::lanl::LanlConfig::paper(8, IoOp::Write),
    );
    let ctx = PlannerContext::for_cluster(&cluster);

    // ---- first process: profile, plan, persist, run ----------------------
    let plan = Scheme::Mha.planner().plan(&trace, &ctx);
    let path = std::env::temp_dir().join(format!("mha-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let first_run = {
        let store = PipelineStore::open(&path).expect("open pipeline store");
        let generation = store.save_plan(&plan).expect("persist plan");
        println!(
            "persisted {:?} plan as generation {generation}: {} layouts, {} RST rows, {} regions",
            plan.scheme,
            plan.layouts.len(),
            plan.rst.len(),
            plan.regions.len()
        );
        replay_under(&plan, &trace, &cluster)
    }; // store handle dropped — the "process" exits here

    // ---- restarted process: recover, reload, replay ----------------------
    let store = PipelineStore::open(&path).expect("reopen pipeline store");
    let outcome = recover(&store).expect("recovery scan");
    println!(
        "recovery: {} batches rolled forward, {} discarded (clean shutdown → 0/0)",
        outcome.rolled_forward, outcome.discarded_batches
    );

    let reloaded = store
        .load_plan()
        .expect("read committed plan")
        .expect("a committed plan is present");
    let second_run = replay_under(&reloaded, &trace, &cluster);

    println!(
        "\n{:<10} {:>12} {:>14} {:>12}",
        "run", "makespan", "bandwidth", "MDS lookups"
    );
    for (name, r) in [("original", &first_run), ("restarted", &second_run)] {
        println!(
            "{:<10} {:>12} {:>11.1} MB/s {:>12}",
            name,
            format!("{}", r.makespan),
            r.bandwidth_mbps(),
            r.mds_lookups
        );
    }

    assert_eq!(first_run.makespan, second_run.makespan, "makespan must survive the restart");
    assert_eq!(
        first_run.request_latency.sum().to_bits(),
        second_run.request_latency.sum().to_bits(),
        "latency accounting must survive the restart"
    );
    println!("\nrestarted run is bit-identical to the original ✓");

    let _ = std::fs::remove_file(&path);
}
