//! Hybrid-cluster tuning study: how the H:S server ratio and the stripe
//! pair interact — the design space behind the paper's Fig. 10.
//!
//! Sweeps the cluster's HDD:SSD split for a mixed IOR workload, showing
//! per-server load balance (the paper's Fig. 8 lens) and the stripe
//! pairs RSSD chooses as SSDs become more plentiful.
//!
//! ```text
//! cargo run --release --example hybrid_tuning
//! ```

use mha::iotrace::gen::ior::{generate, IorConfig};
use mha::prelude::*;
use mha::simrt::stats::imbalance_cv;

fn main() {
    let mut cfg = IorConfig::mixed_sizes(&[128 << 10, 256 << 10], IoOp::Write);
    cfg.reqs_per_proc = 32;
    let trace = generate(&cfg);

    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>16}",
        "ratio", "DEF MB/s", "MHA MB/s", "DEF imbal.", "MHA imbal.", "sample <h, s>"
    );
    for (h, s) in [(7usize, 1usize), (6, 2), (5, 3), (4, 4)] {
        let cluster = ClusterConfig::with_ratio(h, s);
        let ctx = PlannerContext::for_cluster(&cluster);

        let def = Evaluation::of(Scheme::Def, &trace, &cluster).context(&ctx).report();
        let mha = Evaluation::of(Scheme::Mha, &trace, &cluster).context(&ctx).report();

        // Load imbalance: coefficient of variation of per-server I/O time
        // (0 = perfectly even). DEF's fixed stripes leave HServers as
        // stragglers; MHA's variable stripes even the field.
        let def_cv = imbalance_cv(&def.server_busy_secs());
        let mha_cv = imbalance_cv(
            &mha.server_busy_secs()
                .into_iter()
                .filter(|&b| b > 0.0)
                .collect::<Vec<_>>(),
        );

        let plan = Scheme::Mha.planner().plan(&trace, &ctx);
        let sample = plan
            .rst
            .iter()
            .next()
            .map(|(_, p)| format!("<{} KiB, {} KiB>", p.h >> 10, p.s >> 10))
            .unwrap_or_else(|| "-".into());

        println!(
            "{:<8} {:>10.1} {:>10.1} {:>12.3} {:>12.3} {:>16}",
            format!("{h}h:{s}s"),
            def.bandwidth_mbps(),
            mha.bandwidth_mbps(),
            def_cv,
            mha_cv,
            sample
        );
    }

    println!("\nimbal. = coefficient of variation of per-server busy time (lower is better)");
}
