//! Dynamic (online) MHA — the paper's future-work extension — on a
//! workload whose access pattern *changes mid-run*: a LANL-style
//! checkpoint phase followed by a large-request uniform read-back phase.
//!
//! The controller replays in epochs, re-planning (and paying real
//! migration I/O) only when the observed pattern drifts.
//!
//! ```text
//! cargo run --release --example adaptive_online
//! ```

use mha::iotrace::gen::ior::{generate as gen_ior, IorConfig};
use mha::iotrace::gen::lanl::{generate as gen_lanl, LanlConfig};
use mha::mha_core::dynamic::{run_dynamic, DynamicConfig};
use mha::prelude::*;

fn main() {
    let cluster = ClusterConfig::paper_default();
    let ctx = PlannerContext::for_cluster(&cluster);

    // Phase change mid-run: small+large mixed writes, then 1 MiB reads.
    let mut trace = gen_lanl(&LanlConfig::paper(24, IoOp::Write));
    let mut readback = IorConfig::default_run(IoOp::Read);
    readback.size_mix = vec![1 << 20];
    readback.reqs_per_proc = 64;
    trace.extend_with(&gen_ior(&readback));

    println!(
        "workload: {} requests over {} phases (pattern changes mid-run)\n",
        trace.len(),
        trace.phase_count()
    );

    let report = run_dynamic(&cluster, &trace, &ctx, &DynamicConfig::default());

    println!(
        "{:>5} {:>9} {:>12} {:>11} {:>10} {:>13}",
        "epoch", "requests", "epoch MB/s", "replanned", "migrated", "mig. time"
    );
    for e in &report.epochs {
        let bw = if e.io_time.is_zero() {
            0.0
        } else {
            e.bytes as f64 / 1e6 / e.io_time.as_secs_f64()
        };
        println!(
            "{:>5} {:>9} {:>12.1} {:>11} {:>9}K {:>13}",
            e.epoch,
            e.requests,
            bw,
            if e.replanned { "yes" } else { "-" },
            e.migrated_bytes >> 10,
            format!("{}", e.migration_time),
        );
    }

    // Compare against the static extremes.
    let def = Evaluation::of(Scheme::Def, &trace, &cluster).context(&ctx).report();
    let oracle = Evaluation::of(Scheme::Mha, &trace, &cluster).context(&ctx).report();
    println!("\n{:<26} {:>10}", "strategy", "MB/s");
    println!("{:<26} {:>10.1}", "DEF (never plan)", def.bandwidth_mbps());
    println!(
        "{:<26} {:>10.1}  ({} replans, {} MiB migrated)",
        "dynamic MHA (online)",
        report.bandwidth_mbps(),
        report.replans,
        report.migrated_bytes >> 20
    );
    println!(
        "{:<26} {:>10.1}  (plans from the full trace)",
        "oracle MHA (offline)",
        oracle.bandwidth_mbps()
    );
}
