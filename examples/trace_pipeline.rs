//! The five-phase MHA lifecycle, end to end, through the MPI-IO
//! middleware: profile run → off-line planning → table persistence
//! (kvstore / Berkeley DB substitute) → redirected subsequent run.
//!
//! ```text
//! cargo run --release --example trace_pipeline
//! ```

use mha::prelude::*;

/// A small out-of-core solver: each rank reads a panel (shrinking with
/// the step) and writes back a fixed-size slab — the LU pattern of the
/// paper's Fig. 13a, written against the MPI-IO-like API.
fn solver_job(ranks: u32, steps: u32) -> Trace {
    let slab = 524_544u64;
    let mut job = MpiJob::new(ranks);
    let files: Vec<_> = (0..ranks).map(|r| job.open(&format!("matrix.{r}"))).collect();
    for k in 0..steps {
        let read_len = (slab - (slab - 6_272) * u64::from(k) / u64::from(steps.max(2) - 1)).max(6_272);
        for r in 0..ranks {
            job.read_at(r, files[r as usize], u64::from(k) * slab + (slab - read_len), read_len);
        }
        job.barrier();
        for r in 0..ranks {
            job.write_at(r, files[r as usize], u64::from(k) * slab, slab);
        }
        job.barrier();
    }
    job.finish()
}

fn main() {
    let cluster = ClusterConfig::paper_default();
    let trace = solver_job(8, 64);
    let table_file = std::env::temp_dir().join("mha_pipeline_tables.db");
    let _ = std::fs::remove_file(&table_file);

    // Hints select the scheme and its knobs, MPI_Info style.
    let hints = Hints::new().set("mha_scheme", "mha").set("mha_group_bound", "8");
    let mut middleware = Middleware::new(hints).with_table_store(&table_file);

    // Phase 1 — tracing: the first run executes against the default
    // layout with the IOSIG-like collector armed.
    let first = middleware.profile_run(&cluster, &trace);
    println!(
        "first run (DEF, profiled): {:.1} MB/s over {} requests",
        first.report.bandwidth_mbps(),
        first.report.requests
    );

    // Phases 2-4 — reordering, determination, placement: off-line.
    let plan = middleware.plan_from_profile(&cluster);
    println!(
        "plan: {} regions, {} RST entries, scheme {}",
        plan.regions.len(),
        plan.rst.len(),
        plan.scheme.name()
    );

    // The DRT/RST were persisted through the kvstore; a subsequent
    // MPI_Init would reload them from disk:
    let (drt, rst) = middleware.load_tables().expect("tables on disk");
    println!("persisted tables: {} DRT entries, {} RST rows at {}",
        drt.len(), rst.len(), table_file.display());

    // Phase 5 — redirection: the subsequent run resolves through the DRT.
    let second = middleware.optimized_run(&cluster, &trace);
    println!(
        "subsequent run (MHA): {:.1} MB/s, {} of {} requests redirected",
        second.report.bandwidth_mbps(),
        second.redirected,
        second.report.requests
    );
    println!(
        "speedup: {:+.1}%",
        (second.report.bandwidth_mbps() / first.report.bandwidth_mbps() - 1.0) * 100.0
    );

    let _ = std::fs::remove_file(&table_file);
}
