//! Quickstart: compare the four layout schemes on a heterogeneous
//! workload (the paper's LANL App2 pattern).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mha::iotrace::gen::lanl::{generate, LanlConfig};
use mha::prelude::*;

fn main() {
    // The paper's testbed: 6 HDD servers, 2 SSD servers, 8 clients on
    // Gigabit Ethernet.
    let cluster = ClusterConfig::paper_default();

    // The LANL App2 I/O pattern: every loop issues a 16 B header, a
    // (128 KiB - 16) B body and a 128 KiB block per process — three very
    // different access patterns interleaved through one shared file.
    let trace = generate(&LanlConfig::paper(32, IoOp::Write));
    let stats = TraceStats::of(&trace);
    println!(
        "workload: {} requests, {} distinct sizes, max concurrency {}",
        stats.requests, stats.distinct_sizes, stats.max_concurrency
    );

    // Calibrate the cost model against the cluster's devices (this is
    // MHA's Table I) and evaluate each scheme end to end: plan from the
    // profiled trace, install layouts, replay.
    let ctx = PlannerContext::for_cluster(&cluster);
    println!("\n{:<6} {:>12} {:>14} {:>10}", "scheme", "MB/s", "makespan (s)", "vs DEF");
    let mut def_bw = 0.0;
    for scheme in Scheme::all() {
        let report = Evaluation::of(scheme, &trace, &cluster).context(&ctx).report();
        let bw = report.bandwidth_mbps();
        if scheme == Scheme::Def {
            def_bw = bw;
        }
        println!(
            "{:<6} {:>12.1} {:>14.4} {:>+9.1}%",
            scheme.name(),
            bw,
            report.makespan.as_secs_f64(),
            (bw / def_bw - 1.0) * 100.0
        );
    }

    // Peek inside the MHA plan: which regions were formed and which
    // stripe pairs RSSD picked for them.
    let plan = Scheme::Mha.planner().plan(&trace, &ctx);
    println!("\nMHA plan: {} regions", plan.regions.len());
    for region in &plan.regions {
        let pair = plan.rst.get(region.file).expect("every region is optimized");
        println!(
            "  region {:?}: {} extents, {} bytes, stripe pair <h={} KiB, s={} KiB>",
            region.file,
            region.extents,
            region.len,
            pair.h >> 10,
            pair.s >> 10
        );
    }
}
