//! Checkpoint/restart scenario: a BTIO-like solver that alternates large
//! checkpoint dumps with small metadata markers — the heterogeneous
//! write/read pattern the paper's introduction motivates.
//!
//! Shows MHA separating the two pattern classes into regions, and the
//! restart (read) pass benefiting from the layout planned during the
//! checkpoint (write) profiling.
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```

use mha::prelude::*;

/// Checkpoint job: every dump, each rank writes a 64 B marker and then a
/// large interleaved checkpoint block.
fn checkpoint_job(ranks: u32, dumps: u32, block: u64, op_phase: IoOp) -> Trace {
    let marker = 64u64;
    let mut job = MpiJob::new(ranks);
    let f = job.open("checkpoint.dat");
    let slot = marker + block;
    for d in 0..dumps {
        for r in 0..ranks {
            let base = (u64::from(d) * u64::from(ranks) + u64::from(r)) * slot;
            match op_phase {
                IoOp::Write => job.write_at(r, f, base, marker),
                IoOp::Read => job.read_at(r, f, base, marker),
            }
        }
        job.barrier();
        for r in 0..ranks {
            let base = (u64::from(d) * u64::from(ranks) + u64::from(r)) * slot;
            match op_phase {
                IoOp::Write => job.write_at(r, f, base + marker, block),
                IoOp::Read => job.read_at(r, f, base + marker, block),
            }
        }
        job.barrier();
    }
    job.finish()
}

fn main() {
    let cluster = ClusterConfig::paper_default();
    let ranks = 16;
    let dumps = 24;
    let block = 1 << 20; // 1 MiB checkpoint blocks

    let checkpoint = checkpoint_job(ranks, dumps, block, IoOp::Write);
    let restart = checkpoint_job(ranks, dumps, block, IoOp::Read);
    println!(
        "checkpoint: {} writes ({} MiB); restart: {} reads",
        checkpoint.len(),
        checkpoint.total_bytes() >> 20,
        restart.len()
    );

    let ctx = PlannerContext::for_cluster(&cluster);

    // Plan once from the checkpoint profile (the first run), then replay
    // BOTH passes under that plan — a restart reads the data where the
    // checkpoint left it, translated through the same DRT.
    let plan = Scheme::Mha.planner().plan(&checkpoint, &ctx);
    println!("\nMHA regions from the checkpoint profile:");
    for region in &plan.regions {
        let pair = plan.rst.get(region.file).expect("optimized");
        println!(
            "  {:?}: {} bytes, <h={} KiB, s={} KiB>  ({})",
            region.file,
            region.len,
            pair.h >> 10,
            pair.s >> 10,
            if region.len < 1 << 20 { "markers" } else { "checkpoint blocks" }
        );
    }

    println!("\n{:<12} {:>12} {:>12} {:>10}", "pass", "DEF MB/s", "MHA MB/s", "gain");
    for (name, trace) in [("checkpoint", &checkpoint), ("restart", &restart)] {
        let def = Evaluation::of(Scheme::Def, trace, &cluster).context(&ctx).report();
        // Replay under the checkpoint-derived plan.
        let mut c = Cluster::new(cluster.clone());
        apply_plan(&mut c, &plan);
        let mut resolver = plan.make_resolver(SimDuration::from_micros(5));
        let mha = ReplaySession::new()
            .run(ReplayInput::trace(&mut c, trace, resolver.as_mut()), CoreSel::Auto)
            .expect("fault-free replay cannot fail");
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>+9.1}%",
            name,
            def.bandwidth_mbps(),
            mha.bandwidth_mbps(),
            (mha.bandwidth_mbps() / def.bandwidth_mbps() - 1.0) * 100.0
        );
    }
}
