//! # mha — Migratory Heterogeneity-Aware data layout for hybrid PFSs
//!
//! Facade crate for the MHA reproduction (He, Sun, Wang & Xu, IPDPS'18):
//! re-exports the full workspace API and provides a [`prelude`] for the
//! common pipeline.
//!
//! ## Quickstart
//!
//! ```
//! use mha::prelude::*;
//!
//! // 1. A hybrid cluster: 6 HDD servers + 2 SSD servers, 8 clients.
//! let cluster = ClusterConfig::paper_default();
//!
//! // 2. An application with heterogeneous I/O (the paper's LANL App2).
//! let trace = mha::iotrace::gen::lanl::generate(
//!     &mha::iotrace::gen::lanl::LanlConfig::paper(8, IoOp::Write),
//! );
//!
//! // 3. Plan and replay under DEF and MHA.
//! let ctx = PlannerContext::for_cluster(&cluster);
//! let def = Evaluation::of(Scheme::Def, &trace, &cluster).context(&ctx).report();
//! let mha = Evaluation::of(Scheme::Mha, &trace, &cluster).context(&ctx).report();
//! assert!(mha.bandwidth_mbps() > def.bandwidth_mbps());
//! ```
//!
//! To study a degraded cluster, attach a [`pfs_sim::FaultPlan`] with
//! [`Evaluation::faults`](mha_core::schemes::Evaluation::faults) and opt
//! into health-aware replanning with `replan_around_faults(true)`.
//!
//! ## Crate map
//!
//! | crate | role |
//! |-------|------|
//! | [`simrt`] | discrete-event runtime, stats, deterministic seeding |
//! | [`storage_model`] | HDD/SSD service-time models + calibration |
//! | [`netsim`] | Gigabit-Ethernet-class star fabric |
//! | [`pfs_sim`] | the hybrid PFS simulator (OrangeFS substitute) |
//! | [`iotrace`] | traces, collector, six workload generators |
//! | [`kvstore`] | durable hash KV store (Berkeley DB substitute) |
//! | [`mha_core`] | the paper's contribution + DEF/AAL/HARL baselines |
//! | [`mpiio_sim`] | MPI-IO middleware layer + five-phase lifecycle |

pub use iotrace;
pub use kvstore;
pub use mha_core;
pub use mpiio_sim;
pub use netsim;
pub use pfs_sim;
pub use simrt;
pub use storage_model;

/// The common imports for driving the pipeline.
pub mod prelude {
    pub use iotrace::{Collector, Trace, TraceRecord, TraceStats};
    pub use mha_core::schemes::{
        apply_plan, Evaluation, LayoutPlanner, Plan, PlannerContext, Scheme,
    };
    pub use mha_core::dynamic::{run_dynamic, run_dynamic_durable, DynamicConfig, DynamicReport};
    pub use mha_core::persist::{recover, recover_tenant, PersistError, PipelineStore, TenantStore};
    pub use mha_core::tenant::TenantPipeline;
    pub use mha_core::{
        file_sizes, placement_factors, rebuild_onto_spare, CostParams, DrtResolver,
        GroupingConfig, OnlineConfig, OnlineConfigBuilder, OnlinePlanner, OpFactors,
        RebuildOutcome, RssdConfig,
    };
    pub use mpiio_sim::{Hints, Middleware, MpiJob};
    pub use pfs_sim::{
        Cluster, ClusterConfig, CoreSel, FaultPlan, IdentityResolver, LayoutService, LayoutSpec,
        MdsConfig, NullRuntime, Placement, ReplayError, ReplayInput, ReplaySession, SchedPolicy,
        ServiceConfig, ServiceReport, ServerId, TenantId, TenantRuntime,
    };
    pub use simrt::{SimDuration, SimTime};
    pub use storage_model::IoOp;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let cluster = ClusterConfig::paper_default();
        let mut job = MpiJob::new(2);
        let f = job.open("x");
        job.write_at(0, f, 0, 4096);
        job.write_at(1, f, 4096, 4096);
        job.barrier();
        let trace = job.finish();
        let mut c = Cluster::new(cluster);
        let report = ReplaySession::new()
            .run(ReplayInput::trace(&mut c, &trace, &mut IdentityResolver), CoreSel::Auto)
            .expect("fault-free replay cannot fail");
        assert!(report.bandwidth_mbps() > 0.0);
    }
}
