//! Cross-crate integration tests: the full five-phase pipeline
//! (trace → plan → place → redirect → replay) on every workload family.

use mha::iotrace::gen::{btio, cholesky, hpio, ior, lanl, lu};
use mha::prelude::*;

fn ctx(cluster: &ClusterConfig) -> PlannerContext {
    PlannerContext::for_cluster(cluster)
}

/// One scheme, planned and replayed through the session builder.
fn eval(
    scheme: Scheme,
    trace: &Trace,
    cluster: &ClusterConfig,
    c: &PlannerContext,
) -> mha::pfs_sim::ReplayReport {
    Evaluation::of(scheme, trace, cluster).context(c).report()
}

fn ctx_for(cluster: &ClusterConfig, trace: &Trace) -> PlannerContext {
    PlannerContext::for_cluster(cluster).with_step_for(trace)
}

/// Every byte a workload moves must be moved under every scheme.
#[test]
fn byte_conservation_across_schemes() {
    let cluster = ClusterConfig::paper_default();
    let traces: Vec<Trace> = vec![
        lanl::generate(&lanl::LanlConfig::paper(6, IoOp::Write)),
        lu::generate(&lu::LuConfig { procs: 4, steps: 16 }),
        cholesky::generate(&cholesky::CholeskyConfig {
            procs: 4,
            panels: 12,
            ..Default::default()
        }),
        btio::generate(&btio::BtioConfig::paper(4, IoOp::Write)),
    ];
    for trace in &traces {
        let c = ctx_for(&cluster, trace);
        for scheme in Scheme::all() {
            let report = eval(scheme, trace, &cluster, &c);
            assert_eq!(
                report.total_bytes,
                trace.total_bytes(),
                "{} lost bytes",
                scheme.name()
            );
            assert_eq!(report.requests, trace.len());
        }
    }
}

/// The paper's headline ordering on heterogeneous workloads:
/// MHA ≥ HARL and MHA > DEF.
#[test]
fn scheme_ordering_on_heterogeneous_workloads() {
    let cluster = ClusterConfig::paper_default();
    let c = ctx(&cluster);
    let workloads: Vec<(&str, Trace)> = vec![
        ("lanl", lanl::generate(&lanl::LanlConfig::paper(16, IoOp::Write))),
        ("ior-mixed", {
            let mut cfg = ior::IorConfig::mixed_sizes(&[128 << 10, 256 << 10], IoOp::Write);
            cfg.reqs_per_proc = 48;
            ior::generate(&cfg)
        }),
        ("hpio", {
            let mut cfg = hpio::HpioConfig::paper(16, IoOp::Write);
            cfg.region_count = 256;
            hpio::generate(&cfg)
        }),
    ];
    for (name, trace) in &workloads {
        let def = eval(Scheme::Def, trace, &cluster, &c).bandwidth_mbps();
        let harl = eval(Scheme::Harl, trace, &cluster, &c).bandwidth_mbps();
        let mha = eval(Scheme::Mha, trace, &cluster, &c).bandwidth_mbps();
        assert!(mha > def, "{name}: MHA {mha} <= DEF {def}");
        assert!(mha >= harl * 0.98, "{name}: MHA {mha} trails HARL {harl}");
    }
}

/// For uniform access patterns MHA degenerates to HARL-class performance
/// (the paper's Fig. 7/9 "single size / single process count" columns).
#[test]
fn mha_degenerates_gracefully_on_uniform_patterns() {
    let cluster = ClusterConfig::paper_default();
    let c = ctx(&cluster);
    let mut cfg = ior::IorConfig::default_run(IoOp::Write);
    cfg.reqs_per_proc = 16;
    let trace = ior::generate(&cfg);
    let harl = eval(Scheme::Harl, &trace, &cluster, &c).bandwidth_mbps();
    let mha = eval(Scheme::Mha, &trace, &cluster, &c).bandwidth_mbps();
    let ratio = mha / harl;
    assert!(
        (0.9..=1.5).contains(&ratio),
        "uniform pattern should be HARL-class: mha={mha} harl={harl}"
    );
}

/// Replays are bit-deterministic: same trace, same cluster → same report.
#[test]
fn end_to_end_determinism() {
    let cluster = ClusterConfig::paper_default();
    let c = ctx(&cluster);
    let trace = lanl::generate(&lanl::LanlConfig::paper(8, IoOp::Write));
    for scheme in Scheme::all() {
        let a = eval(scheme, &trace, &cluster, &c);
        let b = eval(scheme, &trace, &cluster, &c);
        assert_eq!(a.makespan, b.makespan, "{}", scheme.name());
        assert_eq!(a.server_busy_secs(), b.server_busy_secs(), "{}", scheme.name());
    }
}

/// The MHA plan's DRT covers every traced byte (no residuals on the
/// paper's workloads) and the redirector serves reads and writes from the
/// same single-homed location.
#[test]
fn drt_single_homing_on_read_modify_write() {
    let cluster = ClusterConfig::paper_default();
    let c = ctx(&cluster);
    let trace = lu::generate(&lu::LuConfig { procs: 4, steps: 24 });
    let plan = Scheme::Mha.planner().plan(&trace, &c);
    let mha_core::schemes::PlanResolver::Drt(drt) = &plan.resolver else {
        panic!("MHA plans must redirect")
    };
    for rec in trace.records() {
        let pieces = drt.translate(rec.file, rec.offset, rec.len);
        let total: u64 = pieces.iter().map(|p| p.len).sum();
        assert_eq!(total, rec.len, "translation must cover the request");
        for p in &pieces {
            assert!(
                p.file.0 >= 1 << 20,
                "byte left behind in the original file: {rec:?}"
            );
        }
    }
}

/// Cross-scheme invariant: per-server bytes written sum to the trace
/// volume regardless of which servers the plan uses.
#[test]
fn per_server_bytes_sum_to_volume() {
    let cluster = ClusterConfig::paper_default();
    let c = ctx(&cluster);
    let trace = lanl::generate(&lanl::LanlConfig::paper(8, IoOp::Write));
    for scheme in Scheme::all() {
        let r = eval(scheme, &trace, &cluster, &c);
        let server_bytes: u64 = r.per_server.iter().map(|s| s.bytes_written).sum();
        assert_eq!(server_bytes, trace.total_bytes(), "{}", scheme.name());
    }
}

/// Degenerate clusters still work: no SServers (layout falls back to
/// HServers), single server, single client.
#[test]
fn degenerate_clusters() {
    let trace = lanl::generate(&lanl::LanlConfig::paper(4, IoOp::Write));
    for (h, s) in [(8usize, 0usize), (1, 0), (0, 1), (1, 1)] {
        let cluster = ClusterConfig::with_ratio(h, s);
        let c = ctx(&cluster);
        for scheme in Scheme::all() {
            let r = eval(scheme, &trace, &cluster, &c);
            assert!(
                r.bandwidth_mbps() > 0.0,
                "{}h:{s}s {}: zero bandwidth",
                h,
                scheme.name()
            );
        }
    }
}

/// The middleware lifecycle matches the direct planner path.
#[test]
fn middleware_agrees_with_direct_evaluation() {
    let cluster = ClusterConfig::paper_default();
    let trace = lanl::generate(&lanl::LanlConfig::paper(8, IoOp::Write));
    let mut mw = Middleware::new(Hints::new());
    mw.profile_run(&cluster, &trace);
    mw.plan_from_profile(&cluster);
    let run = mw.optimized_run(&cluster, &trace);
    let c = ctx(&cluster);
    let direct = eval(Scheme::Mha, &trace, &cluster, &c);
    let ratio = run.report.bandwidth_mbps() / direct.bandwidth_mbps();
    assert!(
        (0.95..=1.05).contains(&ratio),
        "middleware {} vs direct {}",
        run.report.bandwidth_mbps(),
        direct.bandwidth_mbps()
    );
}
