//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning crates.

// The offline `proptest` stub expands `proptest!` to nothing, so every
// import and helper referenced only inside those blocks looks dead.
#![allow(dead_code, unused_imports)]

use mha::mha_core::region::{Drt, DrtEntry};
use mha::mha_core::{CostParams, ReqView};
use mha::pfs_sim::{LayoutSpec, ServerId};
use mha::storage_model::IoOp;
use proptest::prelude::*;

fn arb_layout() -> impl Strategy<Value = LayoutSpec> {
    // 1..=6 HServers with stripe h, 0..=4 SServers with stripe s; at
    // least one class non-empty with a positive stripe.
    (1usize..=6, 1u64..=64, 0usize..=4, 1u64..=128).prop_map(|(m, h, n, s)| {
        let hs: Vec<ServerId> = (0..m).map(ServerId).collect();
        let ss: Vec<ServerId> = (m..m + n).map(ServerId).collect();
        LayoutSpec::hybrid(&hs, h * 1024, &ss, s * 1024)
    })
}

proptest! {
    /// map_extent partitions any extent exactly: lengths sum to the
    /// request and pieces are in file order with no zero-length pieces.
    #[test]
    fn striping_partitions_extents(
        layout in arb_layout(),
        offset in 0u64..(1 << 30),
        len in 0u64..(8 << 20),
    ) {
        let subs = layout.map_extent(offset, len);
        let total: u64 = subs.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, len);
        prop_assert!(subs.iter().all(|s| s.len > 0));
    }

    /// Mapping a contiguous file prefix yields dense, non-overlapping
    /// per-server objects (each server's pieces tile [0, share)).
    #[test]
    fn striping_server_objects_are_dense(
        layout in arb_layout(),
        rounds in 1u64..20,
    ) {
        let len = layout.round_size() * rounds;
        let subs = layout.map_extent(0, len);
        let mut per_server: std::collections::BTreeMap<ServerId, Vec<(u64, u64)>> =
            Default::default();
        for s in subs {
            per_server.entry(s.server).or_default().push((s.server_offset, s.len));
        }
        for (server, mut spans) in per_server {
            spans.sort_unstable();
            let mut cursor = 0;
            for (o, l) in spans {
                prop_assert_eq!(o, cursor);
                cursor = o + l;
            }
            prop_assert_eq!(cursor, layout.stripe_of(server) * rounds);
        }
    }

    /// per_server_load agrees with map_extent.
    #[test]
    fn per_server_load_matches_map(
        layout in arb_layout(),
        offset in 0u64..(1 << 26),
        len in 1u64..(4 << 20),
    ) {
        let loads = layout.per_server_load(offset, len);
        let total: u64 = loads.iter().map(|(_, b, _)| *b).sum();
        prop_assert_eq!(total, len);
        let runs: u32 = loads.iter().map(|(_, _, r)| *r).sum();
        prop_assert_eq!(runs as usize, layout.map_extent(offset, len).len());
    }

    /// DRT translation covers any queried extent exactly once, whatever
    /// set of non-overlapping entries was inserted.
    #[test]
    fn drt_translation_partitions_queries(
        entries in proptest::collection::vec((0u64..64, 1u64..32), 0..40),
        query_off in 0u64..2048,
        query_len in 1u64..512,
    ) {
        let mut drt = Drt::new();
        let mut cursor = 0u64;
        for (i, (gap, len)) in entries.iter().enumerate() {
            // Build entries left to right with random gaps: never overlap.
            let off = cursor + gap;
            cursor = off + len;
            drt.insert(DrtEntry {
                o_file: mha::iotrace::FileId(0),
                o_offset: off,
                r_file: mha::iotrace::FileId(100 + (i as u32 % 5)),
                r_offset: (i as u64) * 4096,
                length: *len,
            });
        }
        let pieces = drt.translate(mha::iotrace::FileId(0), query_off, query_len);
        let total: u64 = pieces.iter().map(|p| p.len).sum();
        prop_assert_eq!(total, query_len);
        // Pieces are in logical order and contiguous in the logical space.
        prop_assert!(pieces.iter().all(|p| p.len > 0));
    }

    /// Inserting random (possibly overlapping) entries never corrupts the
    /// table: accepted entries stay exactly retrievable.
    #[test]
    fn drt_insert_accept_reject_is_consistent(
        entries in proptest::collection::vec((0u64..256, 1u64..64), 1..60),
    ) {
        let mut drt = Drt::new();
        let mut accepted: Vec<DrtEntry> = Vec::new();
        for (i, (off, len)) in entries.iter().enumerate() {
            let e = DrtEntry {
                o_file: mha::iotrace::FileId(0),
                o_offset: *off,
                r_file: mha::iotrace::FileId(100),
                r_offset: i as u64 * 128,
                length: *len,
            };
            let overlaps_existing = accepted.iter().any(|a| {
                a.o_offset < e.o_offset + e.length && e.o_offset < a.o_offset + a.length
            });
            let inserted = drt.insert(e);
            prop_assert_eq!(inserted, !overlaps_existing);
            if inserted {
                accepted.push(e);
            }
        }
        prop_assert_eq!(drt.len(), accepted.len());
        for a in &accepted {
            prop_assert_eq!(
                drt.lookup_exact(a.o_file, a.o_offset, a.length),
                Some((a.r_file, a.r_offset))
            );
        }
    }

    /// The Eq. 2 cost is monotone in request size and strictly positive.
    #[test]
    fn cost_monotone_and_positive(
        len in 1u64..(4 << 20),
        conc in 1u32..64,
        h in 0u64..64,
        s in 1u64..128,
    ) {
        let params = CostParams {
            m: 6,
            n: 2,
            t: 1.0 / 117.0e6,
            alpha_h: 12.7e-3,
            beta_h: 1.0 / 90.0e6,
            alpha_sr: 80.0e-6,
            beta_sr: 1.0 / 700.0e6,
            alpha_sw: 170.0e-6,
            beta_sw: 1.0 / 450.0e6,
        };
        let (h, s) = (h * 4096, s * 4096);
        let small = ReqView { offset: 0, len, op: IoOp::Read, concurrency: conc };
        let big = ReqView { offset: 0, len: len * 2, op: IoOp::Read, concurrency: conc };
        let cs = params.request_cost(&small, h, s);
        let cb = params.request_cost(&big, h, s);
        prop_assert!(cs > 0.0);
        prop_assert!(cb >= cs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// kvstore: any sequence of puts/deletes replayed after reopen gives
    /// the same final map (durability), even if garbage is appended to
    /// the log (torn write).
    #[test]
    fn kvstore_durable_under_ops_and_torn_tail(
        ops in proptest::collection::vec((0u8..16, 0u8..4, proptest::bool::ANY), 1..60),
        garbage in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        use std::collections::HashMap;
        let path = std::env::temp_dir().join(format!(
            "mha-prop-{}-{:x}",
            std::process::id(),
            ops.len() * 1000 + garbage.len()
        ));
        let _ = std::fs::remove_file(&path);
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        {
            let store = mha::kvstore::Store::open(
                &path,
                mha::kvstore::StoreOptions { sync_on_write: false, ..Default::default() },
            ).expect("open");
            for (k, v, is_put) in &ops {
                let key = vec![*k];
                if *is_put {
                    let val = vec![*v; 3];
                    store.put(&key, &val).expect("put");
                    model.insert(key, val);
                } else {
                    store.delete(&key).expect("delete");
                    model.remove(&key);
                }
            }
            store.sync().expect("sync");
        }
        // Torn write at crash.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).expect("append");
            f.write_all(&garbage).expect("garbage");
        }
        let store = mha::kvstore::Store::open_default(&path).expect("reopen");
        prop_assert_eq!(store.len(), model.len());
        for (k, v) in &model {
            let got = store.get(k).expect("get");
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        let _ = std::fs::remove_file(&path);
    }
}

proptest! {
    /// Grouping invariants: every point assigned, group ids dense, count
    /// bounded by k, deterministic.
    #[test]
    fn grouping_invariants(
        sizes in proptest::collection::vec(1u64..(4 << 20), 1..200),
        k in 1usize..12,
    ) {
        use mha::mha_core::{group_requests, GroupingConfig, ReqFeature};
        let points: Vec<ReqFeature> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| ReqFeature { size: s as f64, concurrency: (1 + i % 9) as f64 })
            .collect();
        let cfg = GroupingConfig { k, ..Default::default() };
        let g = group_requests(&points, &cfg);
        prop_assert_eq!(g.assignment.len(), points.len());
        prop_assert!(g.groups() >= 1);
        prop_assert!(g.groups() <= k.max(points.len().min(k)));
        // Dense ids: every group id below groups() appears.
        for gid in 0..g.groups() {
            prop_assert!(g.assignment.iter().any(|&a| a == gid), "group {} empty", gid);
        }
        // Deterministic.
        let g2 = group_requests(&points, &cfg);
        prop_assert_eq!(g.assignment, g2.assignment);
    }

    /// WAL scan never panics on arbitrary bytes and never reports a valid
    /// length beyond the buffer.
    #[test]
    fn wal_scan_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let scan = mha::kvstore::wal::scan(&bytes);
        prop_assert!(scan.valid_len as usize <= bytes.len());
        for rec in &scan.records {
            prop_assert!((rec.offset as usize) < bytes.len().max(1));
        }
    }

    /// Network fabric: transfer completion is monotone in size and never
    /// earlier than the start time.
    #[test]
    fn fabric_transfer_monotone(bytes_a in 1u64..(1 << 24), extra in 0u64..(1 << 24)) {
        use mha::netsim::{LinkParams, NetFabric, NodeId};
        use mha::simrt::SimTime;
        let mut f1 = NetFabric::new(2, LinkParams::gigabit_ethernet());
        let mut f2 = NetFabric::new(2, LinkParams::gigabit_ethernet());
        let t0 = SimTime::from_nanos(1000);
        let small = f1.transfer(t0, NodeId(0), NodeId(1), bytes_a);
        let large = f2.transfer(t0, NodeId(0), NodeId(1), bytes_a + extra);
        prop_assert!(small > t0);
        prop_assert!(large >= small);
    }

    /// HDD service time is monotone in request size at a fixed position
    /// and never negative/zero for nonzero requests.
    #[test]
    fn hdd_service_monotone(len in 1u64..(8 << 20), offset in 0u64..(100 << 30)) {
        use mha::storage_model::{Device, HddModel, IoOp};
        let mut a = HddModel::sata2_250gb();
        let mut b = HddModel::sata2_250gb();
        let ta = a.service_time(IoOp::Read, offset, len);
        let tb = b.service_time(IoOp::Read, offset, len * 2);
        prop_assert!(ta.as_nanos() > 0);
        prop_assert!(tb >= ta);
    }

    /// The closed-form decomposition kernel agrees with the map_extent
    /// oracle on per-server (bytes, runs) totals for arbitrary layouts
    /// and extents (the kernel reports in round order, the oracle in
    /// first-touch order — compare as sorted sets).
    #[test]
    fn closed_form_load_matches_oracle(
        layout in arb_layout(),
        offset in 0u64..(1 << 26),
        len in 0u64..(4 << 20),
    ) {
        use mha::pfs_sim::LoadScratch;
        let mut oracle = layout.per_server_load(offset, len);
        oracle.sort_unstable_by_key(|e| e.0);
        let mut scratch = LoadScratch::new();
        layout.per_server_load_into(offset, len, &mut scratch);
        let mut kernel: Vec<_> = scratch.entries().collect();
        kernel.sort_unstable_by_key(|e| e.0);
        prop_assert_eq!(kernel, oracle);
    }

    /// Branch-and-bound pruning is exact: the pruned search returns the
    /// same (pair, cost) — bit-for-bit — as the exhaustive one, across
    /// random regions and cluster shapes including the n = 0 (no
    /// SServers) and h = 0 (SServers-only winner) extremes.
    #[test]
    fn pruned_rssd_is_exact(
        shape in (0usize..=6, 0usize..=4).prop_filter("need a server", |(m, n)| m + n > 0),
        reqs in proptest::collection::vec((1u64..=64, 1u32..10, proptest::bool::ANY), 1..40),
    ) {
        use mha::mha_core::{rssd, RssdConfig};
        let (m, n) = shape;
        let params = CostParams {
            m, n,
            t: 1.0 / 117.0e6,
            alpha_h: 12.7e-3,
            beta_h: 1.0 / 90.0e6,
            alpha_sr: 80.0e-6,
            beta_sr: 1.0 / 700.0e6,
            alpha_sw: 170.0e-6,
            beta_sw: 1.0 / 450.0e6,
        };
        let views: Vec<ReqView> = reqs
            .iter()
            .enumerate()
            .map(|(i, &(pages, concurrency, read))| ReqView {
                offset: i as u64 * 262_144,
                len: pages * 4096,
                op: if read { IoOp::Read } else { IoOp::Write },
                concurrency,
            })
            .collect();
        let pruned = rssd(&views, &params, &RssdConfig::default());
        let plain = rssd(
            &views,
            &params,
            &RssdConfig { pruning: false, ..RssdConfig::default() },
        );
        match (pruned, plain) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.pair, b.pair);
                prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits());
                prop_assert_eq!(a.evaluated, b.evaluated, "grid size is prune-independent");
                prop_assert_eq!(b.pruned, 0);
                prop_assert!(a.pruned <= a.evaluated);
            }
            (None, None) => {}
            _ => prop_assert!(false, "pruning changed result presence"),
        }
    }

    /// RSSD always returns a pair within bounds, on the step grid, with
    /// s > h, for any nonempty uniform region.
    #[test]
    fn rssd_result_well_formed(
        len in 1u64..(2 << 20),
        conc in 1u32..32,
        count in 1usize..24,
    ) {
        use mha::mha_core::{rssd, CostParams, ReqView, RssdConfig};
        use mha::storage_model::IoOp;
        let params = CostParams {
            m: 6, n: 2,
            t: 1.0 / 117.0e6,
            alpha_h: 5.0e-3, beta_h: 1.1e-8,
            alpha_sr: 1.0e-4, beta_sr: 1.4e-9,
            alpha_sw: 2.0e-4, beta_sw: 2.2e-9,
        };
        let reqs: Vec<ReqView> = (0..count)
            .map(|i| ReqView { offset: i as u64 * len, len, op: IoOp::Write, concurrency: conc })
            .collect();
        let cfg = RssdConfig::default();
        let r = rssd(&reqs, &params, &cfg).expect("nonempty region");
        prop_assert!(r.cost.is_finite() && r.cost > 0.0);
        prop_assert!(r.pair.s > r.pair.h);
        prop_assert_eq!(r.pair.h % cfg.step, 0);
        prop_assert_eq!(r.pair.s % cfg.step, 0);
    }
}

// ------------------------------------------------- pipeline persistence --

/// Deterministic DRT/RST pair for the durability properties: `salt`
/// varies the content so different cases exercise different byte
/// patterns on disk.
fn persisted_tables(salt: u64) -> (mha::mha_core::region::Drt, mha::mha_core::region::Rst) {
    use mha::mha_core::region::{Drt, DrtEntry, Rst};
    use mha::mha_core::rssd::StripePair;
    let mut drt = Drt::new();
    for i in 0..8u64 {
        assert!(drt.insert(DrtEntry {
            o_file: mha::iotrace::FileId(0),
            o_offset: i * 16384 + salt * 131_072,
            r_file: mha::iotrace::FileId(80_000 + (salt as u32)),
            r_offset: i * 8192,
            length: 4096 + salt * 512,
        }));
    }
    let mut rst = Rst::new();
    rst.set(
        mha::iotrace::FileId(80_000 + (salt as u32)),
        StripePair { h: 4096 * (salt + 1), s: 65_536 * (salt + 1) },
    );
    (drt, rst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single bit flip anywhere in the store file can never smuggle a
    /// *different* table past the checksums: reloading yields a
    /// structured error, "nothing committed", or the exact committed
    /// snapshot — never a partial or mutated table. Recovery stays
    /// idempotent on whatever survives.
    #[test]
    fn persisted_tables_survive_single_bit_flips(
        salt in 0u64..4,
        flip_pos in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        use mha::prelude::{recover, PipelineStore};
        let path = std::env::temp_dir().join(format!(
            "mha-prop-flip-{}-{salt}-{flip_pos}-{flip_bit}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let (drt, rst) = persisted_tables(salt);
        {
            let store = PipelineStore::open(&path).expect("open");
            store.save_tables(&drt, &rst).expect("save");
        }
        // Flip one bit somewhere in the file (position wrapped to size).
        {
            use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
            let mut f = std::fs::OpenOptions::new().read(true).write(true).open(&path)
                .expect("reopen file");
            let len = f.metadata().expect("meta").len() as usize;
            prop_assume!(len > 0);
            let pos = flip_pos % len;
            let mut byte = [0u8; 1];
            f.seek(SeekFrom::Start(pos as u64)).expect("seek");
            f.read_exact(&mut byte).expect("read");
            byte[0] ^= 1 << flip_bit;
            f.seek(SeekFrom::Start(pos as u64)).expect("seek back");
            f.write_all(&byte).expect("write flipped");
        }
        let store = PipelineStore::open(&path).expect("reopen store");
        match store.load_tables() {
            Err(_) => {} // structured rejection is a valid outcome
            Ok(None) => {} // the commit record was the casualty
            Ok(Some((d, r))) => {
                // All-or-nothing: only the exact committed snapshot loads.
                prop_assert_eq!(&d, &drt);
                prop_assert_eq!(&r, &rst);
            }
        }
        // Recovery never panics, and recovering twice is recovering once.
        if let Ok(first) = recover(&store) {
            let again = recover(&store).expect("recovery is idempotent");
            prop_assert_eq!(again.rolled_forward, 0);
            prop_assert_eq!(
                again.tables.is_some(),
                first.tables.is_some(),
                "second recovery changed table presence"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Truncating the store file at any point (a torn final write) falls
    /// back to a complete committed generation: with gen A then gen B on
    /// disk, every prefix loads exactly B, exactly A, or nothing.
    #[test]
    fn persisted_tables_survive_truncation(
        keep_fraction in 0u32..=100,
    ) {
        use mha::prelude::PipelineStore;
        let path = std::env::temp_dir().join(format!(
            "mha-prop-trunc-{}-{keep_fraction}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let (drt_a, rst_a) = persisted_tables(1);
        let (drt_b, rst_b) = persisted_tables(2);
        {
            let store = PipelineStore::open(&path).expect("open");
            store.save_tables(&drt_a, &rst_a).expect("save gen A");
            store.save_tables(&drt_b, &rst_b).expect("save gen B");
        }
        let full = std::fs::metadata(&path).expect("meta").len();
        let keep = full * u64::from(keep_fraction) / 100;
        {
            let f = std::fs::OpenOptions::new().write(true).open(&path).expect("reopen");
            f.set_len(keep).expect("truncate");
        }
        let store = PipelineStore::open(&path).expect("reopen store");
        match store.load_tables() {
            Ok(None) => {} // truncated before the first commit record
            Ok(Some((d, r))) => {
                let is_b = d == drt_b && r == rst_b;
                let is_a = d == drt_a && r == rst_a;
                prop_assert!(is_a || is_b, "loaded tables match neither generation");
            }
            Err(e) => {
                // A WAL-valid prefix always ends between records, so the
                // envelope layer should have a complete generation or
                // none; surface anything else for inspection.
                prop_assert!(false, "truncation produced {e}");
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
