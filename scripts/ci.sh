#!/usr/bin/env bash
# Tier-1 gate plus lint: everything a PR must keep green.
#
#   ./scripts/ci.sh
#
# Runs from the repo root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# --all-targets lints tests, benches and examples too; deprecated-API
# calls outside the dedicated shim tests fail the gate.
cargo clippy --workspace --all-targets -- -D warnings
# Benches must at least compile (running them is opt-in; `cargo bench`
# on the full grid takes minutes).
cargo bench --no-run
# Fault-matrix smoke: the degraded-cluster experiment must run end to
# end (empty-plan bit-identity and replanning wins are asserted by the
# test suite; this catches panics in the full figure path).
cargo run -p mha-bench --release --bin figures -- fault --quick
