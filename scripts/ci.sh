#!/usr/bin/env bash
# Tier-1 gate plus lint: everything a PR must keep green.
#
#   ./scripts/ci.sh
#
# Runs from the repo root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

# Build artifacts must never be tracked: a committed target/ bloats the
# history and makes every local build dirty the working tree.
if git ls-files target | grep -q .; then
    echo "error: files under target/ are tracked in git" >&2
    exit 1
fi
# Same for logs: run transcripts are local scratch (.gitignore has
# *.log), never part of the history.
if git ls-files '*.log' | grep -q .; then
    echo "error: log files are tracked in git" >&2
    exit 1
fi

cargo build --release
cargo test -q
# --all-targets lints tests, benches and examples too; the pre-0.3
# replay free functions are gone, so any resurrected caller fails here.
cargo clippy --workspace --all-targets -- -D warnings
# Benches must at least compile (running them is opt-in; `cargo bench`
# on the full grid takes minutes). This includes the planning front-end
# stage bench (benches/plan.rs) behind results/BENCH_plan.json.
cargo bench --no-run
# Durability gate, explicitly: the kill-point matrices (simulated crash
# at every commit boundary of save_plan and journaled migration), the
# corruption/truncation recovery tests, and the save→reload→replay
# bit-identity round-trip. These already ran inside `cargo test -q`;
# naming them here keeps the crash-consistency contract from silently
# dropping out of the suite.
cargo test -q -p mha-core persist::
cargo test -q -p mha-core kill_matrix
cargo test -q -p mha-bench --test persist_roundtrip
cargo test -q -p mha --test properties persisted_tables
# Front-end equivalence gate, explicitly: the parallel grouping path
# must stay bit-identical to serial, and the interval-slab DRT builder
# must keep matching the reference BTreeMap build loop (both also run
# inside `cargo test -q`; naming them pins the PR 5 contract).
cargo test -q -p mha-core grouping_serial_matches_parallel
cargo test -q -p mha-core drt_builder_equivalence
# Sharded-replay identity gate, explicitly: the per-server-lane core
# and the streaming-generator path must stay bit-identical to the
# serial replay loop across randomized traces, cluster shapes, layouts
# and fault plans (also inside `cargo test -q`; named to pin the PR 6
# contract).
cargo test -q -p pfs-sim --test sharded_equivalence
# Scale smoke: a 1024-server, ~1M-record streaming run with a
# serial == sharded == streamed identity assertion on a materialized
# prefix — catches panics, identity drift and memory blow-ups at the
# cluster sizes the full grid exercises.
cargo run -p mha-bench --release --bin scale -- --smoke
# Fault-matrix smoke: the degraded-cluster experiment must run end to
# end (empty-plan bit-identity and replanning wins are asserted by the
# test suite; this catches panics in the full figure path).
cargo run -p mha-bench --release --bin figures -- fault --quick
# Online smoke: the plan-while-running loop (windowed replans + lazy
# on-access migration) must still recover from a phase shift at least
# 2x sooner than plan-then-rerun, with quiet windows costing <10% of a
# cold plan — the acceptance bars are asserted inside the binary.
cargo run -p mha-bench --release --bin online -- --smoke
# Service smoke: the multi-tenant layout service must stay seeded-
# deterministic (same seed => bit-identical schedule and job reports),
# keep co-tenants from perturbing each other's replay reports, and
# degenerate to a plain streaming replay for one tenant — all asserted
# inside the binary. The kill-matrix resume test does the same for a
# crash mid-service on the shared store.
cargo run -p mha-bench --release --bin service -- --smoke
cargo test -q -p mha-bench --test service_resume
# Redundancy smoke: replicated and erasure-coded layouts must survive
# a permanent server loss end to end — every degraded redundant replay
# completes with zero timeouts, healthy redundant replays stay
# bit-identical to striped MHA, and the journaled rebuild swaps every
# affected layout onto the spare. All bars are asserted inside the
# binary; its kill-point matrix lives in `mha-core rebuild::`.
cargo run -p mha-bench --release --bin redundancy -- --smoke
# Degraded-equivalence gate, explicitly: the serial and sharded cores
# must agree bit-for-bit (counters included) on randomized *degraded*
# redundant replays — replica failover and erasure decode included
# (also inside the sharded_equivalence run above; named to pin the
# redundancy contract).
cargo test -q -p pfs-sim --test sharded_equivalence degraded_redundant
# Straggler smoke: client-side straggler-aware dispatch must stay a
# bit-identical no-op fault-free, agree across both replay cores in
# every cell, and never lose to blind dispatch under the migrating
# transient straggler — all asserted inside the binary.
cargo run -p mha-bench --release --bin straggler -- --smoke
# Scheduler-policy gates, explicitly: SeededShuffle must replay the
# exact pre-scheduler dispatch order, fault-free StragglerAware must be
# bit-identical to it, and the cores must agree under random scheduler
# policies crossed with fault plans (also inside `cargo test -q`;
# named to pin this PR's contract).
cargo test -q -p pfs-sim --test sched_policy
cargo test -q -p pfs-sim --test sharded_equivalence random_sched_policies
