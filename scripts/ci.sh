#!/usr/bin/env bash
# Tier-1 gate plus lint: everything a PR must keep green.
#
#   ./scripts/ci.sh
#
# Runs from the repo root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
# Benches must at least compile (running them is opt-in; `cargo bench`
# on the full grid takes minutes).
cargo bench --no-run
