/root/repo/target/release/examples/quickstart-296c9973a6a9fe98.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-296c9973a6a9fe98: examples/quickstart.rs

examples/quickstart.rs:
