/root/repo/target/release/examples/trace_pipeline-14cf870249f06efa.d: examples/trace_pipeline.rs

/root/repo/target/release/examples/trace_pipeline-14cf870249f06efa: examples/trace_pipeline.rs

examples/trace_pipeline.rs:
