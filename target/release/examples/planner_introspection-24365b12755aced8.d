/root/repo/target/release/examples/planner_introspection-24365b12755aced8.d: crates/mha-core/examples/planner_introspection.rs

/root/repo/target/release/examples/planner_introspection-24365b12755aced8: crates/mha-core/examples/planner_introspection.rs

crates/mha-core/examples/planner_introspection.rs:
