/root/repo/target/release/examples/checkpoint_restart-5185c75816cbe9cb.d: examples/checkpoint_restart.rs

/root/repo/target/release/examples/checkpoint_restart-5185c75816cbe9cb: examples/checkpoint_restart.rs

examples/checkpoint_restart.rs:
