/root/repo/target/release/examples/adaptive_online-9f95bde7175978f5.d: examples/adaptive_online.rs

/root/repo/target/release/examples/adaptive_online-9f95bde7175978f5: examples/adaptive_online.rs

examples/adaptive_online.rs:
