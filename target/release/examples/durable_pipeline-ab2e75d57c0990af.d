/root/repo/target/release/examples/durable_pipeline-ab2e75d57c0990af.d: examples/durable_pipeline.rs

/root/repo/target/release/examples/durable_pipeline-ab2e75d57c0990af: examples/durable_pipeline.rs

examples/durable_pipeline.rs:
