/root/repo/target/release/examples/hybrid_tuning-ec2dd2fa91c49b7f.d: examples/hybrid_tuning.rs

/root/repo/target/release/examples/hybrid_tuning-ec2dd2fa91c49b7f: examples/hybrid_tuning.rs

examples/hybrid_tuning.rs:
