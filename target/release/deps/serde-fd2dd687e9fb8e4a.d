/root/repo/target/release/deps/serde-fd2dd687e9fb8e4a.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-fd2dd687e9fb8e4a.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-fd2dd687e9fb8e4a.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
