/root/repo/target/release/deps/mha_bench-010c489cc10042dd.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/mha_bench-010c489cc10042dd: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
