/root/repo/target/release/deps/netsim-f4a1042790e54878.d: crates/netsim/src/lib.rs

/root/repo/target/release/deps/netsim-f4a1042790e54878: crates/netsim/src/lib.rs

crates/netsim/src/lib.rs:
