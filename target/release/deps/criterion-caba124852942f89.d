/root/repo/target/release/deps/criterion-caba124852942f89.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-caba124852942f89.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-caba124852942f89.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
