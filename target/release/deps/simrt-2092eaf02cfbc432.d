/root/repo/target/release/deps/simrt-2092eaf02cfbc432.d: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/lanes.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs

/root/repo/target/release/deps/simrt-2092eaf02cfbc432: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/lanes.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs

crates/simrt/src/lib.rs:
crates/simrt/src/engine.rs:
crates/simrt/src/fault.rs:
crates/simrt/src/lanes.rs:
crates/simrt/src/resource.rs:
crates/simrt/src/rng.rs:
crates/simrt/src/stats.rs:
crates/simrt/src/time.rs:
