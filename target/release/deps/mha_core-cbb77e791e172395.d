/root/repo/target/release/deps/mha_core-cbb77e791e172395.d: crates/mha-core/src/lib.rs crates/mha-core/src/cost.rs crates/mha-core/src/dynamic.rs crates/mha-core/src/grouping.rs crates/mha-core/src/pattern.rs crates/mha-core/src/persist.rs crates/mha-core/src/redirect.rs crates/mha-core/src/region.rs crates/mha-core/src/rssd.rs crates/mha-core/src/schemes.rs

/root/repo/target/release/deps/libmha_core-cbb77e791e172395.rlib: crates/mha-core/src/lib.rs crates/mha-core/src/cost.rs crates/mha-core/src/dynamic.rs crates/mha-core/src/grouping.rs crates/mha-core/src/pattern.rs crates/mha-core/src/persist.rs crates/mha-core/src/redirect.rs crates/mha-core/src/region.rs crates/mha-core/src/rssd.rs crates/mha-core/src/schemes.rs

/root/repo/target/release/deps/libmha_core-cbb77e791e172395.rmeta: crates/mha-core/src/lib.rs crates/mha-core/src/cost.rs crates/mha-core/src/dynamic.rs crates/mha-core/src/grouping.rs crates/mha-core/src/pattern.rs crates/mha-core/src/persist.rs crates/mha-core/src/redirect.rs crates/mha-core/src/region.rs crates/mha-core/src/rssd.rs crates/mha-core/src/schemes.rs

crates/mha-core/src/lib.rs:
crates/mha-core/src/cost.rs:
crates/mha-core/src/dynamic.rs:
crates/mha-core/src/grouping.rs:
crates/mha-core/src/pattern.rs:
crates/mha-core/src/persist.rs:
crates/mha-core/src/redirect.rs:
crates/mha-core/src/region.rs:
crates/mha-core/src/rssd.rs:
crates/mha-core/src/schemes.rs:
