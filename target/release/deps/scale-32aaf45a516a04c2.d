/root/repo/target/release/deps/scale-32aaf45a516a04c2.d: crates/bench/src/bin/scale.rs

/root/repo/target/release/deps/scale-32aaf45a516a04c2: crates/bench/src/bin/scale.rs

crates/bench/src/bin/scale.rs:
