/root/repo/target/release/deps/fault_session-f82241a470bb8679.d: crates/bench/tests/fault_session.rs

/root/repo/target/release/deps/fault_session-f82241a470bb8679: crates/bench/tests/fault_session.rs

crates/bench/tests/fault_session.rs:
