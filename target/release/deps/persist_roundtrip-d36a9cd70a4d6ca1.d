/root/repo/target/release/deps/persist_roundtrip-d36a9cd70a4d6ca1.d: crates/bench/tests/persist_roundtrip.rs

/root/repo/target/release/deps/persist_roundtrip-d36a9cd70a4d6ca1: crates/bench/tests/persist_roundtrip.rs

crates/bench/tests/persist_roundtrip.rs:
