/root/repo/target/release/deps/replay_grid-f93e20e031adf382.d: crates/bench/tests/replay_grid.rs

/root/repo/target/release/deps/replay_grid-f93e20e031adf382: crates/bench/tests/replay_grid.rs

crates/bench/tests/replay_grid.rs:
