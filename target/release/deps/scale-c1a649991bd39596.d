/root/repo/target/release/deps/scale-c1a649991bd39596.d: crates/bench/src/bin/scale.rs

/root/repo/target/release/deps/scale-c1a649991bd39596: crates/bench/src/bin/scale.rs

crates/bench/src/bin/scale.rs:
