/root/repo/target/release/deps/serde_json-da33bb1502b8f1cf.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-da33bb1502b8f1cf.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-da33bb1502b8f1cf.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
