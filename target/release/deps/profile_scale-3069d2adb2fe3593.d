/root/repo/target/release/deps/profile_scale-3069d2adb2fe3593.d: crates/bench/src/bin/profile_scale.rs

/root/repo/target/release/deps/profile_scale-3069d2adb2fe3593: crates/bench/src/bin/profile_scale.rs

crates/bench/src/bin/profile_scale.rs:
