/root/repo/target/release/deps/pfs_sim-041145069dc183e7.d: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs crates/pfs-sim/src/sharded.rs

/root/repo/target/release/deps/pfs_sim-041145069dc183e7: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs crates/pfs-sim/src/sharded.rs

crates/pfs-sim/src/lib.rs:
crates/pfs-sim/src/cluster.rs:
crates/pfs-sim/src/error.rs:
crates/pfs-sim/src/fault.rs:
crates/pfs-sim/src/layout.rs:
crates/pfs-sim/src/mds.rs:
crates/pfs-sim/src/replay.rs:
crates/pfs-sim/src/server.rs:
crates/pfs-sim/src/session.rs:
crates/pfs-sim/src/sharded.rs:
