/root/repo/target/release/deps/storage_model-d75acc27e30d284d.d: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs

/root/repo/target/release/deps/storage_model-d75acc27e30d284d: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs

crates/storage-model/src/lib.rs:
crates/storage-model/src/calibrate.rs:
crates/storage-model/src/degrade.rs:
crates/storage-model/src/device.rs:
crates/storage-model/src/hdd.rs:
crates/storage-model/src/ssd.rs:
