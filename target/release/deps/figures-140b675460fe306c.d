/root/repo/target/release/deps/figures-140b675460fe306c.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-140b675460fe306c: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
