/root/repo/target/release/deps/simrt-dca62dab007a8394.d: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/lanes.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs

/root/repo/target/release/deps/libsimrt-dca62dab007a8394.rlib: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/lanes.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs

/root/repo/target/release/deps/libsimrt-dca62dab007a8394.rmeta: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/lanes.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs

crates/simrt/src/lib.rs:
crates/simrt/src/engine.rs:
crates/simrt/src/fault.rs:
crates/simrt/src/lanes.rs:
crates/simrt/src/resource.rs:
crates/simrt/src/rng.rs:
crates/simrt/src/stats.rs:
crates/simrt/src/time.rs:
