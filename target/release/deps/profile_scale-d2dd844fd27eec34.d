/root/repo/target/release/deps/profile_scale-d2dd844fd27eec34.d: crates/bench/src/bin/profile_scale.rs

/root/repo/target/release/deps/profile_scale-d2dd844fd27eec34: crates/bench/src/bin/profile_scale.rs

crates/bench/src/bin/profile_scale.rs:
