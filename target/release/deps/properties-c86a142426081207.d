/root/repo/target/release/deps/properties-c86a142426081207.d: tests/properties.rs

/root/repo/target/release/deps/properties-c86a142426081207: tests/properties.rs

tests/properties.rs:
