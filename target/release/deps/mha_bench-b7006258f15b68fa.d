/root/repo/target/release/deps/mha_bench-b7006258f15b68fa.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libmha_bench-b7006258f15b68fa.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libmha_bench-b7006258f15b68fa.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
