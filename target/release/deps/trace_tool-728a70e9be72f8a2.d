/root/repo/target/release/deps/trace_tool-728a70e9be72f8a2.d: crates/iotrace/src/bin/trace-tool.rs

/root/repo/target/release/deps/trace_tool-728a70e9be72f8a2: crates/iotrace/src/bin/trace-tool.rs

crates/iotrace/src/bin/trace-tool.rs:
