/root/repo/target/release/deps/rayon-edac61ce2eb8897a.d: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-edac61ce2eb8897a.rlib: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-edac61ce2eb8897a.rmeta: /tmp/stubs/rayon/src/lib.rs

/tmp/stubs/rayon/src/lib.rs:
