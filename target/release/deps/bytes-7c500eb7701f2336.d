/root/repo/target/release/deps/bytes-7c500eb7701f2336.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-7c500eb7701f2336.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-7c500eb7701f2336.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
