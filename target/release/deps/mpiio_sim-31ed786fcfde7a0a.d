/root/repo/target/release/deps/mpiio_sim-31ed786fcfde7a0a.d: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

/root/repo/target/release/deps/mpiio_sim-31ed786fcfde7a0a: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

crates/mpiio-sim/src/lib.rs:
crates/mpiio-sim/src/collective.rs:
crates/mpiio-sim/src/hints.rs:
crates/mpiio-sim/src/job.rs:
crates/mpiio-sim/src/middleware.rs:
