/root/repo/target/release/deps/proptest-824bd071a128f0f1.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-824bd071a128f0f1.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-824bd071a128f0f1.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
