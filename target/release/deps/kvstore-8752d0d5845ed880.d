/root/repo/target/release/deps/kvstore-8752d0d5845ed880.d: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

/root/repo/target/release/deps/libkvstore-8752d0d5845ed880.rlib: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

/root/repo/target/release/deps/libkvstore-8752d0d5845ed880.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/codec.rs:
crates/kvstore/src/error.rs:
crates/kvstore/src/lru.rs:
crates/kvstore/src/store.rs:
crates/kvstore/src/wal.rs:
