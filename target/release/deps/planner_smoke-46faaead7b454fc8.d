/root/repo/target/release/deps/planner_smoke-46faaead7b454fc8.d: crates/bench/tests/planner_smoke.rs

/root/repo/target/release/deps/planner_smoke-46faaead7b454fc8: crates/bench/tests/planner_smoke.rs

crates/bench/tests/planner_smoke.rs:
