/root/repo/target/release/deps/mpiio_sim-07fe22933d903dad.d: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

/root/repo/target/release/deps/libmpiio_sim-07fe22933d903dad.rlib: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

/root/repo/target/release/deps/libmpiio_sim-07fe22933d903dad.rmeta: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

crates/mpiio-sim/src/lib.rs:
crates/mpiio-sim/src/collective.rs:
crates/mpiio-sim/src/hints.rs:
crates/mpiio-sim/src/job.rs:
crates/mpiio-sim/src/middleware.rs:
