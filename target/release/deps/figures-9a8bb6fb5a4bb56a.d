/root/repo/target/release/deps/figures-9a8bb6fb5a4bb56a.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-9a8bb6fb5a4bb56a: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
