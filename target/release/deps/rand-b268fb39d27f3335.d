/root/repo/target/release/deps/rand-b268fb39d27f3335.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-b268fb39d27f3335.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-b268fb39d27f3335.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
