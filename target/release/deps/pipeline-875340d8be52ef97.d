/root/repo/target/release/deps/pipeline-875340d8be52ef97.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-875340d8be52ef97: tests/pipeline.rs

tests/pipeline.rs:
