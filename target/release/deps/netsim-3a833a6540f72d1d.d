/root/repo/target/release/deps/netsim-3a833a6540f72d1d.d: crates/netsim/src/lib.rs

/root/repo/target/release/deps/libnetsim-3a833a6540f72d1d.rlib: crates/netsim/src/lib.rs

/root/repo/target/release/deps/libnetsim-3a833a6540f72d1d.rmeta: crates/netsim/src/lib.rs

crates/netsim/src/lib.rs:
