/root/repo/target/release/deps/mha_bench-6660262035b8c119.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libmha_bench-6660262035b8c119.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libmha_bench-6660262035b8c119.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
