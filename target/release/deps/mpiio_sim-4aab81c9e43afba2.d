/root/repo/target/release/deps/mpiio_sim-4aab81c9e43afba2.d: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

/root/repo/target/release/deps/libmpiio_sim-4aab81c9e43afba2.rlib: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

/root/repo/target/release/deps/libmpiio_sim-4aab81c9e43afba2.rmeta: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

crates/mpiio-sim/src/lib.rs:
crates/mpiio-sim/src/collective.rs:
crates/mpiio-sim/src/hints.rs:
crates/mpiio-sim/src/job.rs:
crates/mpiio-sim/src/middleware.rs:
