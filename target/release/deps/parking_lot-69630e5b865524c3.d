/root/repo/target/release/deps/parking_lot-69630e5b865524c3.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-69630e5b865524c3.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-69630e5b865524c3.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
