/root/repo/target/release/deps/storage_model-d025fe95960a0864.d: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs

/root/repo/target/release/deps/libstorage_model-d025fe95960a0864.rlib: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs

/root/repo/target/release/deps/libstorage_model-d025fe95960a0864.rmeta: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs

crates/storage-model/src/lib.rs:
crates/storage-model/src/calibrate.rs:
crates/storage-model/src/degrade.rs:
crates/storage-model/src/device.rs:
crates/storage-model/src/hdd.rs:
crates/storage-model/src/ssd.rs:
