/root/repo/target/release/deps/kvstore-234f6e940f4e993d.d: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

/root/repo/target/release/deps/kvstore-234f6e940f4e993d: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/codec.rs:
crates/kvstore/src/error.rs:
crates/kvstore/src/lru.rs:
crates/kvstore/src/store.rs:
crates/kvstore/src/wal.rs:
