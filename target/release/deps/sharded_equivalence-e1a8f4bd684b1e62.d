/root/repo/target/release/deps/sharded_equivalence-e1a8f4bd684b1e62.d: crates/pfs-sim/tests/sharded_equivalence.rs

/root/repo/target/release/deps/sharded_equivalence-e1a8f4bd684b1e62: crates/pfs-sim/tests/sharded_equivalence.rs

crates/pfs-sim/tests/sharded_equivalence.rs:
