/root/repo/target/release/deps/mha-a27c4e5d52a9f093.d: src/lib.rs

/root/repo/target/release/deps/mha-a27c4e5d52a9f093: src/lib.rs

src/lib.rs:
