/root/repo/target/release/deps/mha-f3ff3475cd6bfc7c.d: src/lib.rs

/root/repo/target/release/deps/libmha-f3ff3475cd6bfc7c.rlib: src/lib.rs

/root/repo/target/release/deps/libmha-f3ff3475cd6bfc7c.rmeta: src/lib.rs

src/lib.rs:
