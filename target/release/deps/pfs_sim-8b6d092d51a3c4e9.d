/root/repo/target/release/deps/pfs_sim-8b6d092d51a3c4e9.d: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs

/root/repo/target/release/deps/libpfs_sim-8b6d092d51a3c4e9.rlib: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs

/root/repo/target/release/deps/libpfs_sim-8b6d092d51a3c4e9.rmeta: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs

crates/pfs-sim/src/lib.rs:
crates/pfs-sim/src/cluster.rs:
crates/pfs-sim/src/error.rs:
crates/pfs-sim/src/fault.rs:
crates/pfs-sim/src/layout.rs:
crates/pfs-sim/src/mds.rs:
crates/pfs-sim/src/replay.rs:
crates/pfs-sim/src/server.rs:
crates/pfs-sim/src/session.rs:
