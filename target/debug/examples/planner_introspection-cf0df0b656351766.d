/root/repo/target/debug/examples/planner_introspection-cf0df0b656351766.d: crates/mha-core/examples/planner_introspection.rs

/root/repo/target/debug/examples/planner_introspection-cf0df0b656351766: crates/mha-core/examples/planner_introspection.rs

crates/mha-core/examples/planner_introspection.rs:
