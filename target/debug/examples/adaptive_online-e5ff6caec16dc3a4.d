/root/repo/target/debug/examples/adaptive_online-e5ff6caec16dc3a4.d: examples/adaptive_online.rs

/root/repo/target/debug/examples/libadaptive_online-e5ff6caec16dc3a4.rmeta: examples/adaptive_online.rs

examples/adaptive_online.rs:
