/root/repo/target/debug/examples/hybrid_tuning-a47cfeae92eaf228.d: examples/hybrid_tuning.rs

/root/repo/target/debug/examples/hybrid_tuning-a47cfeae92eaf228: examples/hybrid_tuning.rs

examples/hybrid_tuning.rs:
