/root/repo/target/debug/examples/checkpoint_restart-1b510709f443b900.d: examples/checkpoint_restart.rs

/root/repo/target/debug/examples/libcheckpoint_restart-1b510709f443b900.rmeta: examples/checkpoint_restart.rs

examples/checkpoint_restart.rs:
