/root/repo/target/debug/examples/quickstart-573a5fc53c681058.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-573a5fc53c681058.rmeta: examples/quickstart.rs

examples/quickstart.rs:
