/root/repo/target/debug/examples/durable_pipeline-3bdbae42fca3cc4e.d: examples/durable_pipeline.rs

/root/repo/target/debug/examples/durable_pipeline-3bdbae42fca3cc4e: examples/durable_pipeline.rs

examples/durable_pipeline.rs:
