/root/repo/target/debug/examples/quickstart-91e893ffafedfc4c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-91e893ffafedfc4c: examples/quickstart.rs

examples/quickstart.rs:
