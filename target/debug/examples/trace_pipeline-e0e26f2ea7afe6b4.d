/root/repo/target/debug/examples/trace_pipeline-e0e26f2ea7afe6b4.d: examples/trace_pipeline.rs

/root/repo/target/debug/examples/libtrace_pipeline-e0e26f2ea7afe6b4.rmeta: examples/trace_pipeline.rs

examples/trace_pipeline.rs:
