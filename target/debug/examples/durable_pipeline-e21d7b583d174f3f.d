/root/repo/target/debug/examples/durable_pipeline-e21d7b583d174f3f.d: examples/durable_pipeline.rs

/root/repo/target/debug/examples/libdurable_pipeline-e21d7b583d174f3f.rmeta: examples/durable_pipeline.rs

examples/durable_pipeline.rs:
