/root/repo/target/debug/examples/planner_introspection-84539d223e173b89.d: crates/mha-core/examples/planner_introspection.rs

/root/repo/target/debug/examples/planner_introspection-84539d223e173b89: crates/mha-core/examples/planner_introspection.rs

crates/mha-core/examples/planner_introspection.rs:
