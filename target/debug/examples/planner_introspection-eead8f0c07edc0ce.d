/root/repo/target/debug/examples/planner_introspection-eead8f0c07edc0ce.d: crates/mha-core/examples/planner_introspection.rs

/root/repo/target/debug/examples/libplanner_introspection-eead8f0c07edc0ce.rmeta: crates/mha-core/examples/planner_introspection.rs

crates/mha-core/examples/planner_introspection.rs:
