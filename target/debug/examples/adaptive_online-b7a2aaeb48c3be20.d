/root/repo/target/debug/examples/adaptive_online-b7a2aaeb48c3be20.d: examples/adaptive_online.rs

/root/repo/target/debug/examples/adaptive_online-b7a2aaeb48c3be20: examples/adaptive_online.rs

examples/adaptive_online.rs:
