/root/repo/target/debug/examples/checkpoint_restart-9c66ce55b450de89.d: examples/checkpoint_restart.rs

/root/repo/target/debug/examples/checkpoint_restart-9c66ce55b450de89: examples/checkpoint_restart.rs

examples/checkpoint_restart.rs:
