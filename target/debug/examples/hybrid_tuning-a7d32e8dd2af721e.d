/root/repo/target/debug/examples/hybrid_tuning-a7d32e8dd2af721e.d: examples/hybrid_tuning.rs

/root/repo/target/debug/examples/libhybrid_tuning-a7d32e8dd2af721e.rmeta: examples/hybrid_tuning.rs

examples/hybrid_tuning.rs:
