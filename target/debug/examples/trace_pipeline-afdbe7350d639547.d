/root/repo/target/debug/examples/trace_pipeline-afdbe7350d639547.d: examples/trace_pipeline.rs

/root/repo/target/debug/examples/trace_pipeline-afdbe7350d639547: examples/trace_pipeline.rs

examples/trace_pipeline.rs:
