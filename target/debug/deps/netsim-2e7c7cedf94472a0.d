/root/repo/target/debug/deps/netsim-2e7c7cedf94472a0.d: crates/netsim/src/lib.rs

/root/repo/target/debug/deps/libnetsim-2e7c7cedf94472a0.rmeta: crates/netsim/src/lib.rs

crates/netsim/src/lib.rs:
