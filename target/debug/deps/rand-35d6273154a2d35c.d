/root/repo/target/debug/deps/rand-35d6273154a2d35c.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-35d6273154a2d35c.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-35d6273154a2d35c.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
