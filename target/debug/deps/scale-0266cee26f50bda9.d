/root/repo/target/debug/deps/scale-0266cee26f50bda9.d: crates/bench/src/bin/scale.rs Cargo.toml

/root/repo/target/debug/deps/libscale-0266cee26f50bda9.rmeta: crates/bench/src/bin/scale.rs Cargo.toml

crates/bench/src/bin/scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
