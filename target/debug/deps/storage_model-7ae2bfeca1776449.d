/root/repo/target/debug/deps/storage_model-7ae2bfeca1776449.d: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs

/root/repo/target/debug/deps/libstorage_model-7ae2bfeca1776449.rlib: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs

/root/repo/target/debug/deps/libstorage_model-7ae2bfeca1776449.rmeta: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs

crates/storage-model/src/lib.rs:
crates/storage-model/src/calibrate.rs:
crates/storage-model/src/degrade.rs:
crates/storage-model/src/device.rs:
crates/storage-model/src/hdd.rs:
crates/storage-model/src/ssd.rs:
