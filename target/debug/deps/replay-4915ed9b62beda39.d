/root/repo/target/debug/deps/replay-4915ed9b62beda39.d: crates/bench/benches/replay.rs

/root/repo/target/debug/deps/libreplay-4915ed9b62beda39.rmeta: crates/bench/benches/replay.rs

crates/bench/benches/replay.rs:
