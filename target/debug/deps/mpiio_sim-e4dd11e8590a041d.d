/root/repo/target/debug/deps/mpiio_sim-e4dd11e8590a041d.d: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

/root/repo/target/debug/deps/libmpiio_sim-e4dd11e8590a041d.rmeta: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

crates/mpiio-sim/src/lib.rs:
crates/mpiio-sim/src/collective.rs:
crates/mpiio-sim/src/hints.rs:
crates/mpiio-sim/src/job.rs:
crates/mpiio-sim/src/middleware.rs:
