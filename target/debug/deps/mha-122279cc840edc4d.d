/root/repo/target/debug/deps/mha-122279cc840edc4d.d: src/lib.rs

/root/repo/target/debug/deps/mha-122279cc840edc4d: src/lib.rs

src/lib.rs:
