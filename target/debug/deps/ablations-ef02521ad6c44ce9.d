/root/repo/target/debug/deps/ablations-ef02521ad6c44ce9.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-ef02521ad6c44ce9.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
