/root/repo/target/debug/deps/traces-cc5239cc882f131f.d: crates/bench/benches/traces.rs

/root/repo/target/debug/deps/libtraces-cc5239cc882f131f.rmeta: crates/bench/benches/traces.rs

crates/bench/benches/traces.rs:
