/root/repo/target/debug/deps/serde_json-7bb686d4d88e6da0.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-7bb686d4d88e6da0.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
