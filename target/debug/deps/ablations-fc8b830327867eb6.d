/root/repo/target/debug/deps/ablations-fc8b830327867eb6.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-fc8b830327867eb6.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
