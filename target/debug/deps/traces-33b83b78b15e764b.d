/root/repo/target/debug/deps/traces-33b83b78b15e764b.d: crates/bench/benches/traces.rs Cargo.toml

/root/repo/target/debug/deps/libtraces-33b83b78b15e764b.rmeta: crates/bench/benches/traces.rs Cargo.toml

crates/bench/benches/traces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
