/root/repo/target/debug/deps/pipeline-0df193539775cbe5.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-0df193539775cbe5: tests/pipeline.rs

tests/pipeline.rs:
