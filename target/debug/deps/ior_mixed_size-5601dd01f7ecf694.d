/root/repo/target/debug/deps/ior_mixed_size-5601dd01f7ecf694.d: crates/bench/benches/ior_mixed_size.rs

/root/repo/target/debug/deps/libior_mixed_size-5601dd01f7ecf694.rmeta: crates/bench/benches/ior_mixed_size.rs

crates/bench/benches/ior_mixed_size.rs:
