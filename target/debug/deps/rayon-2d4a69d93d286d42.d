/root/repo/target/debug/deps/rayon-2d4a69d93d286d42.d: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-2d4a69d93d286d42.rlib: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-2d4a69d93d286d42.rmeta: /tmp/stubs/rayon/src/lib.rs

/tmp/stubs/rayon/src/lib.rs:
