/root/repo/target/debug/deps/scale-cc4bb8ead3afe2d0.d: crates/bench/src/bin/scale.rs Cargo.toml

/root/repo/target/debug/deps/libscale-cc4bb8ead3afe2d0.rmeta: crates/bench/src/bin/scale.rs Cargo.toml

crates/bench/src/bin/scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
