/root/repo/target/debug/deps/mha_core-a265294a054e1771.d: crates/mha-core/src/lib.rs crates/mha-core/src/cost.rs crates/mha-core/src/dynamic.rs crates/mha-core/src/grouping.rs crates/mha-core/src/pattern.rs crates/mha-core/src/persist.rs crates/mha-core/src/redirect.rs crates/mha-core/src/region.rs crates/mha-core/src/rssd.rs crates/mha-core/src/schemes.rs

/root/repo/target/debug/deps/libmha_core-a265294a054e1771.rlib: crates/mha-core/src/lib.rs crates/mha-core/src/cost.rs crates/mha-core/src/dynamic.rs crates/mha-core/src/grouping.rs crates/mha-core/src/pattern.rs crates/mha-core/src/persist.rs crates/mha-core/src/redirect.rs crates/mha-core/src/region.rs crates/mha-core/src/rssd.rs crates/mha-core/src/schemes.rs

/root/repo/target/debug/deps/libmha_core-a265294a054e1771.rmeta: crates/mha-core/src/lib.rs crates/mha-core/src/cost.rs crates/mha-core/src/dynamic.rs crates/mha-core/src/grouping.rs crates/mha-core/src/pattern.rs crates/mha-core/src/persist.rs crates/mha-core/src/redirect.rs crates/mha-core/src/region.rs crates/mha-core/src/rssd.rs crates/mha-core/src/schemes.rs

crates/mha-core/src/lib.rs:
crates/mha-core/src/cost.rs:
crates/mha-core/src/dynamic.rs:
crates/mha-core/src/grouping.rs:
crates/mha-core/src/pattern.rs:
crates/mha-core/src/persist.rs:
crates/mha-core/src/redirect.rs:
crates/mha-core/src/region.rs:
crates/mha-core/src/rssd.rs:
crates/mha-core/src/schemes.rs:
