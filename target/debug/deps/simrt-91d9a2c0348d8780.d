/root/repo/target/debug/deps/simrt-91d9a2c0348d8780.d: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs

/root/repo/target/debug/deps/libsimrt-91d9a2c0348d8780.rmeta: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs

crates/simrt/src/lib.rs:
crates/simrt/src/engine.rs:
crates/simrt/src/fault.rs:
crates/simrt/src/resource.rs:
crates/simrt/src/rng.rs:
crates/simrt/src/stats.rs:
crates/simrt/src/time.rs:
