/root/repo/target/debug/deps/planner_smoke-b979b84c17e27803.d: crates/bench/tests/planner_smoke.rs

/root/repo/target/debug/deps/planner_smoke-b979b84c17e27803: crates/bench/tests/planner_smoke.rs

crates/bench/tests/planner_smoke.rs:
