/root/repo/target/debug/deps/kvstore-0a0c0c44a6aa3020.d: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

/root/repo/target/debug/deps/libkvstore-0a0c0c44a6aa3020.rlib: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

/root/repo/target/debug/deps/libkvstore-0a0c0c44a6aa3020.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/codec.rs:
crates/kvstore/src/error.rs:
crates/kvstore/src/lru.rs:
crates/kvstore/src/store.rs:
crates/kvstore/src/wal.rs:
