/root/repo/target/debug/deps/simrt-4bd11b7dfba35786.d: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/lanes.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs

/root/repo/target/debug/deps/libsimrt-4bd11b7dfba35786.rlib: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/lanes.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs

/root/repo/target/debug/deps/libsimrt-4bd11b7dfba35786.rmeta: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/lanes.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs

crates/simrt/src/lib.rs:
crates/simrt/src/engine.rs:
crates/simrt/src/fault.rs:
crates/simrt/src/lanes.rs:
crates/simrt/src/resource.rs:
crates/simrt/src/rng.rs:
crates/simrt/src/stats.rs:
crates/simrt/src/time.rs:
