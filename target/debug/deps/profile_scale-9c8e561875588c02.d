/root/repo/target/debug/deps/profile_scale-9c8e561875588c02.d: crates/bench/src/bin/profile_scale.rs Cargo.toml

/root/repo/target/debug/deps/libprofile_scale-9c8e561875588c02.rmeta: crates/bench/src/bin/profile_scale.rs Cargo.toml

crates/bench/src/bin/profile_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
