/root/repo/target/debug/deps/sharded_equivalence-5b690957ad28bf03.d: crates/pfs-sim/tests/sharded_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libsharded_equivalence-5b690957ad28bf03.rmeta: crates/pfs-sim/tests/sharded_equivalence.rs Cargo.toml

crates/pfs-sim/tests/sharded_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
