/root/repo/target/debug/deps/planner_smoke-e1b9dbf5fdccb0e2.d: crates/bench/tests/planner_smoke.rs

/root/repo/target/debug/deps/libplanner_smoke-e1b9dbf5fdccb0e2.rmeta: crates/bench/tests/planner_smoke.rs

crates/bench/tests/planner_smoke.rs:
