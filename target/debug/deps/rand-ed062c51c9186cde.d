/root/repo/target/debug/deps/rand-ed062c51c9186cde.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ed062c51c9186cde.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
