/root/repo/target/debug/deps/replay_grid-b8be94293a197803.d: crates/bench/tests/replay_grid.rs

/root/repo/target/debug/deps/replay_grid-b8be94293a197803: crates/bench/tests/replay_grid.rs

crates/bench/tests/replay_grid.rs:
