/root/repo/target/debug/deps/plan-7a88dd0ee5120012.d: crates/bench/benches/plan.rs

/root/repo/target/debug/deps/libplan-7a88dd0ee5120012.rmeta: crates/bench/benches/plan.rs

crates/bench/benches/plan.rs:
