/root/repo/target/debug/deps/rayon-d4784c91285de320.d: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-d4784c91285de320.rmeta: /tmp/stubs/rayon/src/lib.rs

/tmp/stubs/rayon/src/lib.rs:
