/root/repo/target/debug/deps/plan-23fcdf63f13867c9.d: crates/bench/benches/plan.rs Cargo.toml

/root/repo/target/debug/deps/libplan-23fcdf63f13867c9.rmeta: crates/bench/benches/plan.rs Cargo.toml

crates/bench/benches/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
