/root/repo/target/debug/deps/persist_roundtrip-9904763274eb0085.d: crates/bench/tests/persist_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libpersist_roundtrip-9904763274eb0085.rmeta: crates/bench/tests/persist_roundtrip.rs Cargo.toml

crates/bench/tests/persist_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
