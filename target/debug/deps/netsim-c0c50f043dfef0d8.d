/root/repo/target/debug/deps/netsim-c0c50f043dfef0d8.d: crates/netsim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim-c0c50f043dfef0d8.rmeta: crates/netsim/src/lib.rs Cargo.toml

crates/netsim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
