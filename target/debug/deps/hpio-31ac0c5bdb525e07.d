/root/repo/target/debug/deps/hpio-31ac0c5bdb525e07.d: crates/bench/benches/hpio.rs

/root/repo/target/debug/deps/libhpio-31ac0c5bdb525e07.rmeta: crates/bench/benches/hpio.rs

crates/bench/benches/hpio.rs:
