/root/repo/target/debug/deps/mha_bench-ef8611b2fa5985f6.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/mha_bench-ef8611b2fa5985f6: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
