/root/repo/target/debug/deps/figures-5272a8496e2b7698.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-5272a8496e2b7698.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
