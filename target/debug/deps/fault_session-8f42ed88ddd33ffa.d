/root/repo/target/debug/deps/fault_session-8f42ed88ddd33ffa.d: crates/bench/tests/fault_session.rs

/root/repo/target/debug/deps/libfault_session-8f42ed88ddd33ffa.rmeta: crates/bench/tests/fault_session.rs

crates/bench/tests/fault_session.rs:
