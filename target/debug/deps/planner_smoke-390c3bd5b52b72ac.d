/root/repo/target/debug/deps/planner_smoke-390c3bd5b52b72ac.d: crates/bench/tests/planner_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libplanner_smoke-390c3bd5b52b72ac.rmeta: crates/bench/tests/planner_smoke.rs Cargo.toml

crates/bench/tests/planner_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
