/root/repo/target/debug/deps/proptest-5442d23b7c1eeae1.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-5442d23b7c1eeae1.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
