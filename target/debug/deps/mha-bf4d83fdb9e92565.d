/root/repo/target/debug/deps/mha-bf4d83fdb9e92565.d: src/lib.rs

/root/repo/target/debug/deps/libmha-bf4d83fdb9e92565.rmeta: src/lib.rs

src/lib.rs:
