/root/repo/target/debug/deps/trace_tool-f410d8f4f5f19b03.d: crates/iotrace/src/bin/trace-tool.rs

/root/repo/target/debug/deps/libtrace_tool-f410d8f4f5f19b03.rmeta: crates/iotrace/src/bin/trace-tool.rs

crates/iotrace/src/bin/trace-tool.rs:
