/root/repo/target/debug/deps/criterion-5a6492648aeffff1.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-5a6492648aeffff1.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
