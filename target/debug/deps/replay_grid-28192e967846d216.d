/root/repo/target/debug/deps/replay_grid-28192e967846d216.d: crates/bench/tests/replay_grid.rs Cargo.toml

/root/repo/target/debug/deps/libreplay_grid-28192e967846d216.rmeta: crates/bench/tests/replay_grid.rs Cargo.toml

crates/bench/tests/replay_grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
