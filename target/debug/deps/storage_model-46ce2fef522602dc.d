/root/repo/target/debug/deps/storage_model-46ce2fef522602dc.d: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs Cargo.toml

/root/repo/target/debug/deps/libstorage_model-46ce2fef522602dc.rmeta: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs Cargo.toml

crates/storage-model/src/lib.rs:
crates/storage-model/src/calibrate.rs:
crates/storage-model/src/degrade.rs:
crates/storage-model/src/device.rs:
crates/storage-model/src/hdd.rs:
crates/storage-model/src/ssd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
