/root/repo/target/debug/deps/figures-5268de7b46fce929.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-5268de7b46fce929: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
