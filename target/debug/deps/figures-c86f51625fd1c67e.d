/root/repo/target/debug/deps/figures-c86f51625fd1c67e.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-c86f51625fd1c67e.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
