/root/repo/target/debug/deps/iotrace-89fe15e5ec20d48b.d: crates/iotrace/src/lib.rs crates/iotrace/src/analyze.rs crates/iotrace/src/batch.rs crates/iotrace/src/collector.rs crates/iotrace/src/error.rs crates/iotrace/src/gen/mod.rs crates/iotrace/src/gen/btio.rs crates/iotrace/src/gen/cholesky.rs crates/iotrace/src/gen/hpio.rs crates/iotrace/src/gen/ior.rs crates/iotrace/src/gen/lanl.rs crates/iotrace/src/gen/lu.rs crates/iotrace/src/gen/skewed.rs crates/iotrace/src/record.rs crates/iotrace/src/stats.rs crates/iotrace/src/trace.rs crates/iotrace/src/tsv.rs

/root/repo/target/debug/deps/iotrace-89fe15e5ec20d48b: crates/iotrace/src/lib.rs crates/iotrace/src/analyze.rs crates/iotrace/src/batch.rs crates/iotrace/src/collector.rs crates/iotrace/src/error.rs crates/iotrace/src/gen/mod.rs crates/iotrace/src/gen/btio.rs crates/iotrace/src/gen/cholesky.rs crates/iotrace/src/gen/hpio.rs crates/iotrace/src/gen/ior.rs crates/iotrace/src/gen/lanl.rs crates/iotrace/src/gen/lu.rs crates/iotrace/src/gen/skewed.rs crates/iotrace/src/record.rs crates/iotrace/src/stats.rs crates/iotrace/src/trace.rs crates/iotrace/src/tsv.rs

crates/iotrace/src/lib.rs:
crates/iotrace/src/analyze.rs:
crates/iotrace/src/batch.rs:
crates/iotrace/src/collector.rs:
crates/iotrace/src/error.rs:
crates/iotrace/src/gen/mod.rs:
crates/iotrace/src/gen/btio.rs:
crates/iotrace/src/gen/cholesky.rs:
crates/iotrace/src/gen/hpio.rs:
crates/iotrace/src/gen/ior.rs:
crates/iotrace/src/gen/lanl.rs:
crates/iotrace/src/gen/lu.rs:
crates/iotrace/src/gen/skewed.rs:
crates/iotrace/src/record.rs:
crates/iotrace/src/stats.rs:
crates/iotrace/src/trace.rs:
crates/iotrace/src/tsv.rs:
