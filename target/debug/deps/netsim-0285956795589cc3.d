/root/repo/target/debug/deps/netsim-0285956795589cc3.d: crates/netsim/src/lib.rs

/root/repo/target/debug/deps/netsim-0285956795589cc3: crates/netsim/src/lib.rs

crates/netsim/src/lib.rs:
