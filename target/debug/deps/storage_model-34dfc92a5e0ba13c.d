/root/repo/target/debug/deps/storage_model-34dfc92a5e0ba13c.d: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs

/root/repo/target/debug/deps/storage_model-34dfc92a5e0ba13c: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs

crates/storage-model/src/lib.rs:
crates/storage-model/src/calibrate.rs:
crates/storage-model/src/degrade.rs:
crates/storage-model/src/device.rs:
crates/storage-model/src/hdd.rs:
crates/storage-model/src/ssd.rs:
