/root/repo/target/debug/deps/kvstore-4f922aa782fefc54.d: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

/root/repo/target/debug/deps/libkvstore-4f922aa782fefc54.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/codec.rs:
crates/kvstore/src/error.rs:
crates/kvstore/src/lru.rs:
crates/kvstore/src/store.rs:
crates/kvstore/src/wal.rs:
