/root/repo/target/debug/deps/bytes-9e8981853c0f5130.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-9e8981853c0f5130.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
