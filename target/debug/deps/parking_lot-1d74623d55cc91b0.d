/root/repo/target/debug/deps/parking_lot-1d74623d55cc91b0.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-1d74623d55cc91b0.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-1d74623d55cc91b0.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
