/root/repo/target/debug/deps/criterion-cf2c1846515c7ada.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-cf2c1846515c7ada.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-cf2c1846515c7ada.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
