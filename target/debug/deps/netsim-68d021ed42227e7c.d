/root/repo/target/debug/deps/netsim-68d021ed42227e7c.d: crates/netsim/src/lib.rs

/root/repo/target/debug/deps/libnetsim-68d021ed42227e7c.rmeta: crates/netsim/src/lib.rs

crates/netsim/src/lib.rs:
