/root/repo/target/debug/deps/ior_mixed_procs-44bddc76fa792616.d: crates/bench/benches/ior_mixed_procs.rs

/root/repo/target/debug/deps/libior_mixed_procs-44bddc76fa792616.rmeta: crates/bench/benches/ior_mixed_procs.rs

crates/bench/benches/ior_mixed_procs.rs:
