/root/repo/target/debug/deps/figures-92d5b338e3270619.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-92d5b338e3270619.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
