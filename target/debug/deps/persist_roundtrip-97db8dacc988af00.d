/root/repo/target/debug/deps/persist_roundtrip-97db8dacc988af00.d: crates/bench/tests/persist_roundtrip.rs

/root/repo/target/debug/deps/persist_roundtrip-97db8dacc988af00: crates/bench/tests/persist_roundtrip.rs

crates/bench/tests/persist_roundtrip.rs:
