/root/repo/target/debug/deps/serde-1c122f4b85d96076.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-1c122f4b85d96076.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-1c122f4b85d96076.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
