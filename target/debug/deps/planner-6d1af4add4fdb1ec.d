/root/repo/target/debug/deps/planner-6d1af4add4fdb1ec.d: crates/bench/benches/planner.rs Cargo.toml

/root/repo/target/debug/deps/libplanner-6d1af4add4fdb1ec.rmeta: crates/bench/benches/planner.rs Cargo.toml

crates/bench/benches/planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
