/root/repo/target/debug/deps/replay-527525692b53868a.d: crates/bench/benches/replay.rs Cargo.toml

/root/repo/target/debug/deps/libreplay-527525692b53868a.rmeta: crates/bench/benches/replay.rs Cargo.toml

crates/bench/benches/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
