/root/repo/target/debug/deps/sharded_equivalence-f288bf375b3ae0cc.d: crates/pfs-sim/tests/sharded_equivalence.rs

/root/repo/target/debug/deps/sharded_equivalence-f288bf375b3ae0cc: crates/pfs-sim/tests/sharded_equivalence.rs

crates/pfs-sim/tests/sharded_equivalence.rs:
