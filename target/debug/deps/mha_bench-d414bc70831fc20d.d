/root/repo/target/debug/deps/mha_bench-d414bc70831fc20d.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libmha_bench-d414bc70831fc20d.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
