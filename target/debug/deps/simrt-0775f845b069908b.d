/root/repo/target/debug/deps/simrt-0775f845b069908b.d: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/lanes.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libsimrt-0775f845b069908b.rmeta: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/lanes.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs Cargo.toml

crates/simrt/src/lib.rs:
crates/simrt/src/engine.rs:
crates/simrt/src/fault.rs:
crates/simrt/src/lanes.rs:
crates/simrt/src/resource.rs:
crates/simrt/src/rng.rs:
crates/simrt/src/stats.rs:
crates/simrt/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
