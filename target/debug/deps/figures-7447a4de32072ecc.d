/root/repo/target/debug/deps/figures-7447a4de32072ecc.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-7447a4de32072ecc: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
