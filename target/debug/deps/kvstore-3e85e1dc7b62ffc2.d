/root/repo/target/debug/deps/kvstore-3e85e1dc7b62ffc2.d: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libkvstore-3e85e1dc7b62ffc2.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs Cargo.toml

crates/kvstore/src/lib.rs:
crates/kvstore/src/codec.rs:
crates/kvstore/src/error.rs:
crates/kvstore/src/lru.rs:
crates/kvstore/src/store.rs:
crates/kvstore/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
