/root/repo/target/debug/deps/pfs_sim-a8b72139e7c311df.d: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs crates/pfs-sim/src/sharded.rs

/root/repo/target/debug/deps/libpfs_sim-a8b72139e7c311df.rlib: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs crates/pfs-sim/src/sharded.rs

/root/repo/target/debug/deps/libpfs_sim-a8b72139e7c311df.rmeta: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs crates/pfs-sim/src/sharded.rs

crates/pfs-sim/src/lib.rs:
crates/pfs-sim/src/cluster.rs:
crates/pfs-sim/src/error.rs:
crates/pfs-sim/src/fault.rs:
crates/pfs-sim/src/layout.rs:
crates/pfs-sim/src/mds.rs:
crates/pfs-sim/src/replay.rs:
crates/pfs-sim/src/server.rs:
crates/pfs-sim/src/session.rs:
crates/pfs-sim/src/sharded.rs:
