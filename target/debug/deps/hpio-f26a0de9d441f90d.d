/root/repo/target/debug/deps/hpio-f26a0de9d441f90d.d: crates/bench/benches/hpio.rs Cargo.toml

/root/repo/target/debug/deps/libhpio-f26a0de9d441f90d.rmeta: crates/bench/benches/hpio.rs Cargo.toml

crates/bench/benches/hpio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
