/root/repo/target/debug/deps/planner-b9c9cc00654a09b3.d: crates/bench/benches/planner.rs

/root/repo/target/debug/deps/libplanner-b9c9cc00654a09b3.rmeta: crates/bench/benches/planner.rs

crates/bench/benches/planner.rs:
