/root/repo/target/debug/deps/kvstore-52b3cce569a5ab48.d: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

/root/repo/target/debug/deps/kvstore-52b3cce569a5ab48: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/codec.rs:
crates/kvstore/src/error.rs:
crates/kvstore/src/lru.rs:
crates/kvstore/src/store.rs:
crates/kvstore/src/wal.rs:
