/root/repo/target/debug/deps/mha_bench-f03ad2867ad7f439.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libmha_bench-f03ad2867ad7f439.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
