/root/repo/target/debug/deps/mpiio_sim-e932705cc67b1a23.d: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs Cargo.toml

/root/repo/target/debug/deps/libmpiio_sim-e932705cc67b1a23.rmeta: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs Cargo.toml

crates/mpiio-sim/src/lib.rs:
crates/mpiio-sim/src/collective.rs:
crates/mpiio-sim/src/hints.rs:
crates/mpiio-sim/src/job.rs:
crates/mpiio-sim/src/middleware.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
