/root/repo/target/debug/deps/properties-bf68092236d5841a.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-bf68092236d5841a.rmeta: tests/properties.rs

tests/properties.rs:
