/root/repo/target/debug/deps/bytes-10fc33a7a724d70f.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-10fc33a7a724d70f.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-10fc33a7a724d70f.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
