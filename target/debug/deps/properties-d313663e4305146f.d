/root/repo/target/debug/deps/properties-d313663e4305146f.d: tests/properties.rs

/root/repo/target/debug/deps/properties-d313663e4305146f: tests/properties.rs

tests/properties.rs:
