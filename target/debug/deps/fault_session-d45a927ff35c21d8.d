/root/repo/target/debug/deps/fault_session-d45a927ff35c21d8.d: crates/bench/tests/fault_session.rs

/root/repo/target/debug/deps/fault_session-d45a927ff35c21d8: crates/bench/tests/fault_session.rs

crates/bench/tests/fault_session.rs:
