/root/repo/target/debug/deps/rand-06829faf734ee1d5.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/rand-06829faf734ee1d5: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
