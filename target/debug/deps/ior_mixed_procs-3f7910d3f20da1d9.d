/root/repo/target/debug/deps/ior_mixed_procs-3f7910d3f20da1d9.d: crates/bench/benches/ior_mixed_procs.rs Cargo.toml

/root/repo/target/debug/deps/libior_mixed_procs-3f7910d3f20da1d9.rmeta: crates/bench/benches/ior_mixed_procs.rs Cargo.toml

crates/bench/benches/ior_mixed_procs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
