/root/repo/target/debug/deps/pfs_sim-bbe44554290ed231.d: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs crates/pfs-sim/src/sharded.rs Cargo.toml

/root/repo/target/debug/deps/libpfs_sim-bbe44554290ed231.rmeta: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs crates/pfs-sim/src/sharded.rs Cargo.toml

crates/pfs-sim/src/lib.rs:
crates/pfs-sim/src/cluster.rs:
crates/pfs-sim/src/error.rs:
crates/pfs-sim/src/fault.rs:
crates/pfs-sim/src/layout.rs:
crates/pfs-sim/src/mds.rs:
crates/pfs-sim/src/replay.rs:
crates/pfs-sim/src/server.rs:
crates/pfs-sim/src/session.rs:
crates/pfs-sim/src/sharded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
