/root/repo/target/debug/deps/netsim-d93984bde5b3b5e3.d: crates/netsim/src/lib.rs

/root/repo/target/debug/deps/libnetsim-d93984bde5b3b5e3.rlib: crates/netsim/src/lib.rs

/root/repo/target/debug/deps/libnetsim-d93984bde5b3b5e3.rmeta: crates/netsim/src/lib.rs

crates/netsim/src/lib.rs:
