/root/repo/target/debug/deps/mpiio_sim-84fac0a5130e6f5f.d: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

/root/repo/target/debug/deps/mpiio_sim-84fac0a5130e6f5f: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

crates/mpiio-sim/src/lib.rs:
crates/mpiio-sim/src/collective.rs:
crates/mpiio-sim/src/hints.rs:
crates/mpiio-sim/src/job.rs:
crates/mpiio-sim/src/middleware.rs:
