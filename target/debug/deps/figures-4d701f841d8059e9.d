/root/repo/target/debug/deps/figures-4d701f841d8059e9.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-4d701f841d8059e9.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
