/root/repo/target/debug/deps/mha-0e4acbb56fa5e4cb.d: src/lib.rs

/root/repo/target/debug/deps/libmha-0e4acbb56fa5e4cb.rmeta: src/lib.rs

src/lib.rs:
