/root/repo/target/debug/deps/trace_tool-000a5619f909c3af.d: crates/iotrace/src/bin/trace-tool.rs

/root/repo/target/debug/deps/libtrace_tool-000a5619f909c3af.rmeta: crates/iotrace/src/bin/trace-tool.rs

crates/iotrace/src/bin/trace-tool.rs:
