/root/repo/target/debug/deps/persist_roundtrip-13854cb7d79dd1a7.d: crates/bench/tests/persist_roundtrip.rs

/root/repo/target/debug/deps/libpersist_roundtrip-13854cb7d79dd1a7.rmeta: crates/bench/tests/persist_roundtrip.rs

crates/bench/tests/persist_roundtrip.rs:
