/root/repo/target/debug/deps/pfs_sim-ed57433508b1f1a6.d: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs

/root/repo/target/debug/deps/libpfs_sim-ed57433508b1f1a6.rlib: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs

/root/repo/target/debug/deps/libpfs_sim-ed57433508b1f1a6.rmeta: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs

crates/pfs-sim/src/lib.rs:
crates/pfs-sim/src/cluster.rs:
crates/pfs-sim/src/error.rs:
crates/pfs-sim/src/fault.rs:
crates/pfs-sim/src/layout.rs:
crates/pfs-sim/src/mds.rs:
crates/pfs-sim/src/replay.rs:
crates/pfs-sim/src/server.rs:
crates/pfs-sim/src/session.rs:
