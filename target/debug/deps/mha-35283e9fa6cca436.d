/root/repo/target/debug/deps/mha-35283e9fa6cca436.d: src/lib.rs

/root/repo/target/debug/deps/libmha-35283e9fa6cca436.rlib: src/lib.rs

/root/repo/target/debug/deps/libmha-35283e9fa6cca436.rmeta: src/lib.rs

src/lib.rs:
