/root/repo/target/debug/deps/pfs_sim-af5735512cb84f53.d: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs

/root/repo/target/debug/deps/pfs_sim-af5735512cb84f53: crates/pfs-sim/src/lib.rs crates/pfs-sim/src/cluster.rs crates/pfs-sim/src/error.rs crates/pfs-sim/src/fault.rs crates/pfs-sim/src/layout.rs crates/pfs-sim/src/mds.rs crates/pfs-sim/src/replay.rs crates/pfs-sim/src/server.rs crates/pfs-sim/src/session.rs

crates/pfs-sim/src/lib.rs:
crates/pfs-sim/src/cluster.rs:
crates/pfs-sim/src/error.rs:
crates/pfs-sim/src/fault.rs:
crates/pfs-sim/src/layout.rs:
crates/pfs-sim/src/mds.rs:
crates/pfs-sim/src/replay.rs:
crates/pfs-sim/src/server.rs:
crates/pfs-sim/src/session.rs:
