/root/repo/target/debug/deps/kvstore-eccdb975101476ca.d: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

/root/repo/target/debug/deps/libkvstore-eccdb975101476ca.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/codec.rs crates/kvstore/src/error.rs crates/kvstore/src/lru.rs crates/kvstore/src/store.rs crates/kvstore/src/wal.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/codec.rs:
crates/kvstore/src/error.rs:
crates/kvstore/src/lru.rs:
crates/kvstore/src/store.rs:
crates/kvstore/src/wal.rs:
