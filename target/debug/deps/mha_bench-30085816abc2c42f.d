/root/repo/target/debug/deps/mha_bench-30085816abc2c42f.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libmha_bench-30085816abc2c42f.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libmha_bench-30085816abc2c42f.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
