/root/repo/target/debug/deps/mha_bench-25f21e40d18bfa84.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libmha_bench-25f21e40d18bfa84.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
