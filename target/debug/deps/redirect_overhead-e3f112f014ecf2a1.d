/root/repo/target/debug/deps/redirect_overhead-e3f112f014ecf2a1.d: crates/bench/benches/redirect_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libredirect_overhead-e3f112f014ecf2a1.rmeta: crates/bench/benches/redirect_overhead.rs Cargo.toml

crates/bench/benches/redirect_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
