/root/repo/target/debug/deps/replay_grid-57517466b7997b00.d: crates/bench/tests/replay_grid.rs

/root/repo/target/debug/deps/libreplay_grid-57517466b7997b00.rmeta: crates/bench/tests/replay_grid.rs

crates/bench/tests/replay_grid.rs:
