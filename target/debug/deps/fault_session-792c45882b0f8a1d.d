/root/repo/target/debug/deps/fault_session-792c45882b0f8a1d.d: crates/bench/tests/fault_session.rs Cargo.toml

/root/repo/target/debug/deps/libfault_session-792c45882b0f8a1d.rmeta: crates/bench/tests/fault_session.rs Cargo.toml

crates/bench/tests/fault_session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
