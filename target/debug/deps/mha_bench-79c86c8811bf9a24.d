/root/repo/target/debug/deps/mha_bench-79c86c8811bf9a24.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libmha_bench-79c86c8811bf9a24.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
