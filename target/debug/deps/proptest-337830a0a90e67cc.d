/root/repo/target/debug/deps/proptest-337830a0a90e67cc.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-337830a0a90e67cc.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-337830a0a90e67cc.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
