/root/repo/target/debug/deps/serde_json-82737f3691c9abdb.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-82737f3691c9abdb.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-82737f3691c9abdb.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
