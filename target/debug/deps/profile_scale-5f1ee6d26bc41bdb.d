/root/repo/target/debug/deps/profile_scale-5f1ee6d26bc41bdb.d: crates/bench/src/bin/profile_scale.rs Cargo.toml

/root/repo/target/debug/deps/libprofile_scale-5f1ee6d26bc41bdb.rmeta: crates/bench/src/bin/profile_scale.rs Cargo.toml

crates/bench/src/bin/profile_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
