/root/repo/target/debug/deps/serde-dbf8bfedd568faa3.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-dbf8bfedd568faa3.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
