/root/repo/target/debug/deps/storage_model-ee1be1c617ae873b.d: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs

/root/repo/target/debug/deps/libstorage_model-ee1be1c617ae873b.rmeta: crates/storage-model/src/lib.rs crates/storage-model/src/calibrate.rs crates/storage-model/src/degrade.rs crates/storage-model/src/device.rs crates/storage-model/src/hdd.rs crates/storage-model/src/ssd.rs

crates/storage-model/src/lib.rs:
crates/storage-model/src/calibrate.rs:
crates/storage-model/src/degrade.rs:
crates/storage-model/src/device.rs:
crates/storage-model/src/hdd.rs:
crates/storage-model/src/ssd.rs:
