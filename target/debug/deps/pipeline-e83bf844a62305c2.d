/root/repo/target/debug/deps/pipeline-e83bf844a62305c2.d: tests/pipeline.rs

/root/repo/target/debug/deps/libpipeline-e83bf844a62305c2.rmeta: tests/pipeline.rs

tests/pipeline.rs:
