/root/repo/target/debug/deps/parking_lot-52f92ef048588f5e.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-52f92ef048588f5e.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
