/root/repo/target/debug/deps/simrt-efecea5a23aaeac0.d: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs

/root/repo/target/debug/deps/libsimrt-efecea5a23aaeac0.rmeta: crates/simrt/src/lib.rs crates/simrt/src/engine.rs crates/simrt/src/fault.rs crates/simrt/src/resource.rs crates/simrt/src/rng.rs crates/simrt/src/stats.rs crates/simrt/src/time.rs

crates/simrt/src/lib.rs:
crates/simrt/src/engine.rs:
crates/simrt/src/fault.rs:
crates/simrt/src/resource.rs:
crates/simrt/src/rng.rs:
crates/simrt/src/stats.rs:
crates/simrt/src/time.rs:
