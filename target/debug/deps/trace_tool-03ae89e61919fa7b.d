/root/repo/target/debug/deps/trace_tool-03ae89e61919fa7b.d: crates/iotrace/src/bin/trace-tool.rs

/root/repo/target/debug/deps/trace_tool-03ae89e61919fa7b: crates/iotrace/src/bin/trace-tool.rs

crates/iotrace/src/bin/trace-tool.rs:
