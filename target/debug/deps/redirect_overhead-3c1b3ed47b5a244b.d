/root/repo/target/debug/deps/redirect_overhead-3c1b3ed47b5a244b.d: crates/bench/benches/redirect_overhead.rs

/root/repo/target/debug/deps/libredirect_overhead-3c1b3ed47b5a244b.rmeta: crates/bench/benches/redirect_overhead.rs

crates/bench/benches/redirect_overhead.rs:
