/root/repo/target/debug/deps/ior_mixed_size-c724cd7cc5322573.d: crates/bench/benches/ior_mixed_size.rs Cargo.toml

/root/repo/target/debug/deps/libior_mixed_size-c724cd7cc5322573.rmeta: crates/bench/benches/ior_mixed_size.rs Cargo.toml

crates/bench/benches/ior_mixed_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
