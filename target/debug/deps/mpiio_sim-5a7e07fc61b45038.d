/root/repo/target/debug/deps/mpiio_sim-5a7e07fc61b45038.d: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

/root/repo/target/debug/deps/libmpiio_sim-5a7e07fc61b45038.rmeta: crates/mpiio-sim/src/lib.rs crates/mpiio-sim/src/collective.rs crates/mpiio-sim/src/hints.rs crates/mpiio-sim/src/job.rs crates/mpiio-sim/src/middleware.rs

crates/mpiio-sim/src/lib.rs:
crates/mpiio-sim/src/collective.rs:
crates/mpiio-sim/src/hints.rs:
crates/mpiio-sim/src/job.rs:
crates/mpiio-sim/src/middleware.rs:
